//! Sharded (per-cluster) verification: one proof obligation per envelope
//! shard, dispatched across the parallel work-list.
//!
//! The monolithic assume-guarantee proof solves **one** MILP whose start
//! region is the envelope of *all* training activations. A
//! [`dpv_shard::ShardedEnvelope`] partitions those activations into
//! k-means clusters with one envelope per cluster, and the property holds
//! on the union iff it holds on every shard — so the single large MILP
//! becomes `k` independent, strictly tighter MILPs:
//!
//! * each shard's region fixes more ReLU phases (fewer free binaries,
//!   smaller branch-and-bound trees);
//! * the obligations are embarrassingly parallel and are dispatched across
//!   a scoped worker pool exactly like the PR-2 refinement work-list;
//! * each obligation is encoded through its own PR-3
//!   [`crate::EncodingTemplate`], so a later refinement of a shard can
//!   re-tighten the same skeleton instead of re-encoding.
//!
//! **Soundness.** Every shard is a subset of the monolithic envelope and
//! the shard union contains every training activation (the
//! `ShardedEnvelope` invariant), so "safe on every shard" proves the
//! property for every activation the assume-guarantee contract covers —
//! conditional, as before, on a runtime monitor now checking membership in
//! the *union* ([`dpv_shard::ShardedMonitor`]).
//!
//! **Determinism.** Workers may finish in any order, but results are
//! folded back in shard-index order and the lowest-index non-safe verdict
//! wins (counterexamples take precedence over solver give-ups), mirroring
//! the refinement work-list's lowest-index rule: reports are identical run
//! to run for a deterministic backend, regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dpv_lp::{default_backend, SolveStats, SolverBackend};
use dpv_shard::ShardedEnvelope;

use crate::{CoreError, StartRegion, Verdict, VerificationProblem};

/// Configuration of a sharded verification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedVerificationConfig {
    /// Whether each shard's adjacent-difference constraints are encoded
    /// (`true`, the octagon region) or only its box part (`false`) —
    /// the same ablation switch as [`crate::AssumeGuarantee`].
    pub use_difference_constraints: bool,
    /// Worker threads solving shard obligations concurrently. One (or
    /// zero) keeps the dispatch on the calling thread. Combine shard-level
    /// workers with a *serial* backend: stacking them on top of
    /// [`dpv_lp::ParallelBranchAndBoundBackend`] multiplies the two thread
    /// counts and oversubscribes the host.
    pub workers: usize,
}

impl Default for ShardedVerificationConfig {
    fn default() -> Self {
        Self {
            use_difference_constraints: true,
            workers: 1,
        }
    }
}

impl ShardedVerificationConfig {
    /// Difference constraints on, `workers` worker threads.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

/// The result of one shard's proof obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardObligation {
    /// Shard index (aligned with [`dpv_shard::ShardedEnvelope::shards`]).
    pub shard: usize,
    /// Number of activation samples the shard's envelope was built from.
    pub samples: usize,
    /// The shard-local verdict.
    pub verdict: Verdict,
    /// Free binary (ReLU-phase) variables in the shard's MILP.
    pub num_binaries: usize,
    /// ReLU phases fixed by the shard's bounds.
    pub stable_relus: usize,
    /// Solver statistics of the shard's MILP.
    pub stats: SolveStats,
    /// Wall-clock seconds spent on this shard (encoding + solve).
    pub seconds: f64,
}

/// The aggregated result of a sharded verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedVerificationReport {
    /// The aggregate verdict: `Safe` iff every shard is safe; otherwise
    /// the lowest-index counterexample (or, failing that, the lowest-index
    /// solver give-up).
    pub verdict: Verdict,
    /// Per-shard obligations, in shard order.
    pub shards: Vec<ShardObligation>,
    /// Name of the solver backend used.
    pub backend: String,
    /// End-to-end wall-clock seconds for the whole run.
    pub total_seconds: f64,
}

impl ShardedVerificationReport {
    /// Solver statistics summed over every shard obligation.
    pub fn solver_stats(&self) -> SolveStats {
        let mut total = SolveStats::default();
        for shard in &self.shards {
            total += shard.stats;
        }
        total
    }

    /// Total free binaries across the shard MILPs.
    pub fn total_binaries(&self) -> usize {
        self.shards.iter().map(|s| s.num_binaries).sum()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let verdict = match &self.verdict {
            Verdict::Safe => "SAFE (conditional on the sharded runtime monitor)".to_string(),
            Verdict::Unsafe(_) => "UNSAFE (counterexample found)".to_string(),
            Verdict::Unknown(reason) => format!("UNKNOWN ({reason})"),
        };
        let stats = self.solver_stats();
        format!(
            "{verdict} | {} shards | backend {} | {} total binaries | {} nodes | {:.3}s",
            self.shards.len(),
            self.backend,
            self.total_binaries(),
            stats.nodes_explored,
            self.total_seconds
        )
    }
}

impl VerificationProblem {
    /// Verifies the problem per shard with the default solver backend. See
    /// [`VerificationProblem::verify_sharded_with`].
    ///
    /// # Errors
    /// Propagates encoding and consistency errors.
    pub fn verify_sharded(
        &self,
        envelope: &ShardedEnvelope,
        config: &ShardedVerificationConfig,
    ) -> Result<ShardedVerificationReport, CoreError> {
        self.verify_sharded_with(envelope, config, &default_backend())
    }

    /// Verifies the problem once per envelope shard, dispatching the
    /// obligations across `config.workers` scoped threads, and aggregates
    /// the verdicts: the property holds iff it holds on **every** shard;
    /// otherwise the lowest-index shard's counterexample wins (see the
    /// module docs for the determinism rule). With a single shard this is
    /// verdict-identical to the monolithic
    /// [`crate::VerificationStrategy::AssumeGuarantee`] path.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when the envelope's layer or
    /// dimension does not match the problem; propagates encoding errors.
    pub fn verify_sharded_with(
        &self,
        envelope: &ShardedEnvelope,
        config: &ShardedVerificationConfig,
        backend: &dyn SolverBackend,
    ) -> Result<ShardedVerificationReport, CoreError> {
        let regions = self.shard_regions(envelope, config.use_difference_constraints)?;

        let start_time = Instant::now();
        let outcomes = self.solve_obligations(envelope, &regions, config, backend);
        let mut shards = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            shards.push(outcome?);
        }

        // Index-ordered aggregation: counterexamples take precedence (they
        // are conclusive for the whole union), then solver give-ups; the
        // lowest index wins within each class.
        let mut verdict = Verdict::Safe;
        for shard in &shards {
            match (&verdict, &shard.verdict) {
                (_, Verdict::Safe) => {}
                (Verdict::Safe, other) => verdict = other.clone(),
                (Verdict::Unknown(_), Verdict::Unsafe(_)) => verdict = shard.verdict.clone(),
                _ => {}
            }
        }

        Ok(ShardedVerificationReport {
            verdict,
            shards,
            backend: backend.name().to_string(),
            total_seconds: start_time.elapsed().as_secs_f64(),
        })
    }

    /// Validates `envelope` against the problem (layer and dimension must
    /// match) and returns the per-shard start regions in shard-index order —
    /// the octagon of each shard when `use_difference_constraints` is set,
    /// its box part otherwise. This is the decomposition step shared by
    /// [`VerificationProblem::verify_sharded_with`] and the obligation
    /// server (`dpv-serve`), so both derive *identical* obligations from
    /// one envelope.
    ///
    /// # Errors
    /// Returns [`CoreError::Inconsistent`] when the envelope's layer or
    /// dimension does not match the problem.
    pub fn shard_regions(
        &self,
        envelope: &ShardedEnvelope,
        use_difference_constraints: bool,
    ) -> Result<Vec<StartRegion>, CoreError> {
        if envelope.layer() != self.cut_layer() {
            return Err(CoreError::Inconsistent(format!(
                "sharded envelope was built at layer {} but the problem cuts at {}",
                envelope.layer(),
                self.cut_layer()
            )));
        }
        let dim = self.perception().layer_output_dim(self.cut_layer());
        if envelope.dim() != dim {
            return Err(CoreError::Inconsistent(format!(
                "sharded envelope dimension {} does not match cut-layer width {dim}",
                envelope.dim()
            )));
        }
        Ok((0..envelope.shard_count())
            .map(|index| {
                let shard = envelope.shard(index);
                if use_difference_constraints {
                    StartRegion::Octagon(shard.octagon().clone())
                } else {
                    StartRegion::Box(shard.box_only())
                }
            })
            .collect())
    }

    /// Solves every shard obligation, pulling shard indices from a shared
    /// cursor across `config.workers` scoped threads (the PR-2 work-list
    /// pattern), and returns the outcomes indexed like the shards.
    fn solve_obligations(
        &self,
        envelope: &ShardedEnvelope,
        regions: &[StartRegion],
        config: &ShardedVerificationConfig,
        backend: &dyn SolverBackend,
    ) -> Vec<Result<ShardObligation, CoreError>> {
        let shard_count = envelope.shard_count();
        let solve_one = |index: usize| -> Result<ShardObligation, CoreError> {
            let shard_start = Instant::now();
            let shard = envelope.shard(index);
            let region = &regions[index];
            // One encoding template per shard, solved at its own root (no
            // clone-and-retighten: the skeleton *is* the root encoding).
            // The template is what a later per-shard refinement would keep
            // re-instantiating for sub-boxes of the shard.
            let template = self.encoding_template(region)?;
            let (verdict, solution, num_binaries, stable_relus) =
                self.run_solver_on_template_root(&template, backend);
            Ok(ShardObligation {
                shard: index,
                samples: shard.sample_count(),
                verdict,
                num_binaries,
                stable_relus,
                stats: solution.stats,
                seconds: shard_start.elapsed().as_secs_f64(),
            })
        };

        let workers = config.workers.clamp(1, shard_count.max(1));
        if workers <= 1 {
            return (0..shard_count).map(solve_one).collect();
        }

        let cursor = AtomicUsize::new(0);
        let collected = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let solve_one = &solve_one;
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= shard_count {
                                break;
                            }
                            local.push((index, solve_one(index)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("shard worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("scoped shard workers");

        let mut outcomes: Vec<Option<Result<ShardObligation, CoreError>>> =
            (0..shard_count).map(|_| None).collect();
        for (index, outcome) in collected {
            outcomes[index] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|slot| slot.expect("every shard receives exactly one outcome"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        AssumeGuarantee, Characterizer, CharacterizerConfig, InputProperty, RiskCondition,
        VerificationStrategy,
    };
    use dpv_monitor::ActivationEnvelope;
    use dpv_nn::{Activation, Network, NetworkBuilder};
    use dpv_shard::ShardConfig;
    use dpv_tensor::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A trained problem over deliberately bimodal inputs: x0 is either
    /// near 0 or near 1, and the network learns output = 2*x0 - 1.
    fn bimodal_setup(seed: u64) -> (Network, Characterizer, Vec<Vector>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perception = NetworkBuilder::new(4)
            .dense(8, &mut rng)
            .activation(Activation::ReLU)
            .dense(6, &mut rng)
            .activation(Activation::ReLU)
            .dense(1, &mut rng)
            .build();
        let inputs: Vec<Vector> = (0..300)
            .map(|i| {
                let mode = if i % 2 == 0 { 0.05 } else { 0.9 };
                let x0 = mode + rng.gen_range(0.0..0.1);
                let mut v = vec![x0];
                v.extend((0..3).map(|_| rng.gen_range(0.0..1.0)));
                Vector::from_vec(v)
            })
            .collect();
        let targets: Vec<Vector> = inputs
            .iter()
            .map(|x| Vector::from_slice(&[2.0 * x[0] - 1.0]))
            .collect();
        let data = dpv_nn::Dataset::new(inputs.clone(), targets).unwrap();
        dpv_nn::train(
            &mut perception,
            &data,
            &dpv_nn::TrainConfig {
                epochs: 60,
                learning_rate: 0.01,
                ..Default::default()
            },
            dpv_nn::LossKind::Mse,
            &mut rng,
        );
        let examples: Vec<(Vector, bool)> =
            inputs.iter().map(|x| (x.clone(), x[0] > 0.5)).collect();
        let characterizer = Characterizer::train(
            InputProperty::new("x0_large", "the first input exceeds 0.5"),
            &perception,
            3,
            &examples,
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .unwrap();
        (perception, characterizer, inputs)
    }

    fn sharded_envelope(
        perception: &Network,
        inputs: &[Vector],
        k: usize,
    ) -> dpv_shard::ShardedEnvelope {
        dpv_shard::ShardedEnvelope::from_inputs(perception, 3, inputs, 0.0, &ShardConfig::fixed(k))
            .unwrap()
    }

    /// A risk threshold just below anything the monolithic envelope can
    /// reach, so safety is provable on every shard.
    fn provable_risk(perception: &Network, inputs: &[Vector]) -> RiskCondition {
        use dpv_absint::AbstractDomain;
        let envelope = ActivationEnvelope::from_inputs(perception, 3, inputs, 0.0).unwrap();
        let (_, tail) = perception.split_at(3).unwrap();
        let lower = envelope.box_only().propagate(tail.layers()).to_box()[0].lo;
        RiskCondition::new("strongly negative").output_le(0, lower - 0.1)
    }

    #[test]
    fn safe_on_every_shard_aggregates_to_safe() {
        let (perception, characterizer, inputs) = bimodal_setup(1);
        let risk = provable_risk(&perception, &inputs);
        let problem = VerificationProblem::new(perception.clone(), 3, characterizer, risk).unwrap();
        let envelope = sharded_envelope(&perception, &inputs, 4);
        let report = problem
            .verify_sharded(&envelope, &ShardedVerificationConfig::default())
            .unwrap();
        assert!(report.verdict.is_safe(), "{}", report.summary());
        assert_eq!(report.shards.len(), envelope.shard_count());
        assert!(report.shards.iter().all(|s| s.verdict.is_safe()));
        assert!(report.solver_stats().nodes_explored >= report.shards.len());
        assert_eq!(
            report.shards.iter().map(|s| s.samples).sum::<usize>(),
            inputs.len()
        );
    }

    #[test]
    fn single_shard_matches_the_monolithic_path() {
        let (perception, characterizer, inputs) = bimodal_setup(2);
        for (name, risk) in [
            ("provable", provable_risk(&perception, &inputs)),
            ("reachable", RiskCondition::new("weak").output_ge(0, -10.0)),
        ] {
            let problem = VerificationProblem::new(
                perception.clone(),
                3,
                characterizer.clone(),
                risk.clone(),
            )
            .unwrap();
            let envelope = sharded_envelope(&perception, &inputs, 1);
            assert_eq!(envelope.shard_count(), 1);
            for use_diff in [true, false] {
                let monolithic = problem
                    .verify(&VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                        envelope: envelope.merged(),
                        use_difference_constraints: use_diff,
                    }))
                    .unwrap();
                let sharded = problem
                    .verify_sharded(
                        &envelope,
                        &ShardedVerificationConfig {
                            use_difference_constraints: use_diff,
                            workers: 1,
                        },
                    )
                    .unwrap();
                assert_eq!(
                    sharded.verdict, monolithic.verdict,
                    "k = 1 diverged from the monolithic path ({name}, diff {use_diff})"
                );
                assert_eq!(sharded.shards[0].num_binaries, monolithic.num_binaries);
                assert_eq!(sharded.shards[0].stable_relus, monolithic.stable_relus);
            }
        }
    }

    #[test]
    fn counterexamples_surface_with_the_lowest_shard_index() {
        let (perception, characterizer, inputs) = bimodal_setup(3);
        // Trivially reachable risk: every shard returns a counterexample.
        let risk = RiskCondition::new("weak").output_ge(0, -10.0);
        let problem = VerificationProblem::new(perception.clone(), 3, characterizer, risk).unwrap();
        let envelope = sharded_envelope(&perception, &inputs, 3);
        let report = problem
            .verify_sharded(&envelope, &ShardedVerificationConfig::default())
            .unwrap();
        assert!(report.verdict.is_unsafe());
        let first_unsafe = report
            .shards
            .iter()
            .find(|s| s.verdict.is_unsafe())
            .expect("at least one unsafe shard");
        assert_eq!(
            Verdict::Unsafe(match &report.verdict {
                Verdict::Unsafe(ce) => ce.clone(),
                _ => unreachable!(),
            }),
            first_unsafe.verdict
        );
        // The winning counterexample lies inside its shard.
        if let Verdict::Unsafe(ce) = &report.verdict {
            assert!(envelope
                .shard(first_unsafe.shard)
                .contains(&ce.activation, 1e-6));
        }
    }

    #[test]
    fn parallel_dispatch_is_deterministic_and_agrees_with_serial() {
        let (perception, characterizer, inputs) = bimodal_setup(4);
        let risk = provable_risk(&perception, &inputs);
        let problem = VerificationProblem::new(perception.clone(), 3, characterizer, risk).unwrap();
        let envelope = sharded_envelope(&perception, &inputs, 4);
        let serial = problem
            .verify_sharded(&envelope, &ShardedVerificationConfig::default())
            .unwrap();
        let parallel_a = problem
            .verify_sharded(&envelope, &ShardedVerificationConfig::with_workers(4))
            .unwrap();
        let parallel_b = problem
            .verify_sharded(&envelope, &ShardedVerificationConfig::with_workers(4))
            .unwrap();
        assert_eq!(serial.verdict, parallel_a.verdict);
        assert_eq!(parallel_a.verdict, parallel_b.verdict);
        // Per-shard artefacts are scheduling-independent (timings aside).
        for (a, b) in parallel_a.shards.iter().zip(&parallel_b.shards) {
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.num_binaries, b.num_binaries);
        }
        for (s, p) in serial.shards.iter().zip(&parallel_a.shards) {
            assert_eq!(s.verdict, p.verdict);
            assert_eq!(s.stats, p.stats);
        }
    }

    #[test]
    fn mismatched_envelopes_are_rejected() {
        let (perception, characterizer, inputs) = bimodal_setup(5);
        let risk = RiskCondition::new("r").output_le(0, -5.0);
        let problem = VerificationProblem::new(perception.clone(), 3, characterizer, risk).unwrap();
        // Envelope at the wrong layer.
        let wrong_layer = dpv_shard::ShardedEnvelope::from_inputs(
            &perception,
            1,
            &inputs,
            0.0,
            &ShardConfig::fixed(2),
        )
        .unwrap();
        assert!(problem
            .verify_sharded(&wrong_layer, &ShardedVerificationConfig::default())
            .is_err());
    }

    #[test]
    fn sharded_milps_are_tighter_than_the_monolithic_one() {
        let (perception, characterizer, inputs) = bimodal_setup(6);
        let risk = provable_risk(&perception, &inputs);
        let problem = VerificationProblem::new(perception.clone(), 3, characterizer, risk).unwrap();
        let envelope = sharded_envelope(&perception, &inputs, 4);
        let monolithic = problem
            .verify(&VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: envelope.merged(),
                use_difference_constraints: true,
            }))
            .unwrap();
        let report = problem
            .verify_sharded(&envelope, &ShardedVerificationConfig::default())
            .unwrap();
        // Every per-shard MILP has at most the monolithic binary count (the
        // tighter region can only stabilise more ReLUs, never fewer).
        for shard in &report.shards {
            assert!(
                shard.num_binaries <= monolithic.num_binaries,
                "shard {} has {} binaries vs monolithic {}",
                shard.shard,
                shard.num_binaries,
                monolithic.num_binaries
            );
        }
    }
}

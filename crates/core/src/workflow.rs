//! End-to-end workflow: data generation → training → characterizer →
//! envelope → verification → statistical analysis.
//!
//! This is the executable version of the paper's Figure 1, driven by the
//! synthetic ODD of `dpv-scenegen` instead of the proprietary Audi data.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_lp::{default_backend, ParallelBranchAndBoundBackend, SolverBackend};
use dpv_monitor::{ActivationEnvelope, RuntimeMonitor};
use dpv_nn::{
    train, Activation, Dataset, LossKind, Network, NetworkBuilder, OptimizerKind, TensorShape,
    TrainConfig,
};
use dpv_scenegen::{
    affordance, render_scene, DatasetBundle, GeneratorConfig, OddSampler, OddViolation,
    PropertyKind, SceneConfig,
};
use dpv_shard::{ShardConfig, ShardedEnvelope, ShardedMonitor};
use dpv_tensor::Vector;

use dpv_absint::AbstractDomain;

use crate::{
    AssumeGuarantee, Characterizer, CharacterizerConfig, CoreError, DomainKind, InputProperty,
    RiskCondition, ShardedVerificationConfig, ShardedVerificationReport, StatisticalAnalysis,
    VerificationOutcome, VerificationProblem, VerificationStrategy,
};

/// Configuration of the end-to-end workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowConfig {
    /// Scene / image configuration of the synthetic ODD.
    pub scene: SceneConfig,
    /// Number of scenes used to train the perception network (and to build
    /// the activation envelope, as in the paper).
    pub training_samples: usize,
    /// Number of labelled scenes used to train each characterizer.
    pub characterizer_samples: usize,
    /// Number of held-out scenes for the statistical analysis and monitor
    /// coverage measurements.
    pub validation_samples: usize,
    /// Epochs for the perception-network training.
    pub perception_epochs: usize,
    /// Characterizer training hyper-parameters.
    pub characterizer: CharacterizerConfig,
    /// Layer (zero-based) after which the verification cut is placed.
    pub cut_layer: usize,
    /// Widening margin applied to the activation envelope.
    pub envelope_margin: f64,
    /// Number of envelope shards (k-means clusters over the cut-layer
    /// activations). With a value above one the workflow additionally
    /// builds a [`dpv_shard::ShardedEnvelope`], verifies the E1 risk per
    /// shard through [`VerificationProblem::verify_sharded_with`] and
    /// measures the sharded monitor against the monolithic one (see
    /// [`WorkflowOutcome::sharded`]); with one — the default — the sharded
    /// stage is skipped and the workflow behaves exactly as before.
    pub envelope_shards: usize,
    /// Worker threads for the MILP solves of the verification stages. With a
    /// value above one, [`Workflow::new`] picks the parallel branch-and-bound
    /// backend ([`dpv_lp::ParallelBranchAndBoundBackend`]); with one it keeps
    /// the serial default. Ignored by [`Workflow::with_backend`], which
    /// receives an explicit engine.
    pub solver_workers: usize,
    /// Scenes per *scenario family* for the per-class E1 verification of
    /// the scenario-mix stage: every satisfiable [`PropertyKind`] under the
    /// scene configuration defines a family, whose own activation envelope
    /// is verified against the E1 risk (scenario-based compositional
    /// verification). `0` skips the family verification. Unlike the
    /// opt-in sharded stage, this defaults on: family envelopes are
    /// subsets of well-behaved regions, so each verification is typically
    /// a root-infeasible single-node solve (sub-millisecond), and the
    /// stage draws from its own RNG streams — existing stages are
    /// unaffected.
    pub scenario_samples: usize,
    /// Frames per [`OddViolation`] class for the per-class monitor
    /// detection table of the scenario-mix stage (monolithic and — when
    /// [`WorkflowConfig::envelope_shards`] exceeds one — sharded rates on
    /// identical frames). `0` skips the detection table.
    pub violation_samples: usize,
    /// Base RNG seed (the whole workflow is deterministic given the seed).
    pub seed: u64,
}

impl WorkflowConfig {
    /// A configuration small enough for tests and doc examples (a couple of
    /// seconds end to end) while still exercising every stage.
    pub fn small() -> Self {
        Self {
            scene: SceneConfig::small(),
            training_samples: 160,
            characterizer_samples: 160,
            validation_samples: 120,
            perception_epochs: 12,
            characterizer: CharacterizerConfig::small(),
            cut_layer: 6,
            envelope_margin: 0.0,
            envelope_shards: 1,
            solver_workers: 1,
            scenario_samples: 40,
            violation_samples: 40,
            seed: 42,
        }
    }

    /// A larger configuration for the benchmark harness.
    pub fn bench() -> Self {
        Self {
            training_samples: 400,
            characterizer_samples: 400,
            validation_samples: 300,
            perception_epochs: 25,
            scenario_samples: 120,
            violation_samples: 120,
            ..Self::small()
        }
    }
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// One verification experiment inside a workflow run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Experiment identifier (e.g. `"E1"`).
    pub id: String,
    /// Human-readable description of φ and ψ.
    pub description: String,
    /// The outcome, per strategy label.
    pub outcomes: Vec<VerificationOutcome>,
}

/// Artefacts of the sharded-envelope stage (only produced when
/// [`WorkflowConfig::envelope_shards`] exceeds one).
#[derive(Debug, Clone)]
pub struct ShardedArtifacts {
    /// The per-cluster envelopes over the training activations.
    pub envelope: ShardedEnvelope,
    /// Per-shard verification of the E1 risk condition.
    pub verification: ShardedVerificationReport,
    /// Fraction of held-out in-ODD frames accepted by the *sharded*
    /// monitor (never above the monolithic rate: the union is tighter).
    pub monitor_in_odd_rate: f64,
    /// Fraction of out-of-ODD frames flagged by the sharded monitor (never
    /// below the monolithic rate).
    pub monitor_out_of_odd_detection: f64,
}

/// Per-class E1 verification of one scenario family: the activation
/// envelope over scenes satisfying one [`PropertyKind`], verified against
/// the E1 risk with the assume-guarantee strategy.
#[derive(Debug, Clone)]
pub struct ScenarioFamilyResult {
    /// The scenario class (family) this envelope was built from.
    pub property: PropertyKind,
    /// Number of scenes the family envelope was built from.
    pub samples: usize,
    /// The verification outcome for this family.
    pub outcome: VerificationOutcome,
}

/// Per-class monitor detection of one [`OddViolation`] class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolationDetection {
    /// The out-of-ODD violation class.
    pub class: OddViolation,
    /// Frames sampled from this class.
    pub frames: usize,
    /// Frames the monolithic envelope monitor flagged.
    pub monolithic_flagged: usize,
    /// Frames the sharded monitor flagged (same frames), when the sharded
    /// stage ran. Never below `monolithic_flagged` (union containment).
    pub sharded_flagged: Option<usize>,
}

impl ViolationDetection {
    /// Monolithic detection rate in `[0, 1]` (1.0 when no frames sampled).
    pub fn monolithic_rate(&self) -> f64 {
        if self.frames == 0 {
            1.0
        } else {
            self.monolithic_flagged as f64 / self.frames as f64
        }
    }

    /// Sharded detection rate in `[0, 1]`, when the sharded stage ran.
    pub fn sharded_rate(&self) -> Option<f64> {
        self.sharded_flagged.map(|flagged| {
            if self.frames == 0 {
                1.0
            } else {
                flagged as f64 / self.frames as f64
            }
        })
    }
}

/// Artefacts of the scenario-mix stage: scenario-family E1 verification
/// plus the per-violation-class monitor detection table.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// One E1 verification per satisfiable scenario family (empty when
    /// [`WorkflowConfig::scenario_samples`] is zero).
    pub families: Vec<ScenarioFamilyResult>,
    /// Per-violation-class monitor detection (empty when
    /// [`WorkflowConfig::violation_samples`] is zero).
    pub violations: Vec<ViolationDetection>,
}

impl ScenarioReport {
    /// Returns `true` when every scenario family's E1 verdict is safe.
    pub fn all_families_safe(&self) -> bool {
        self.families.iter().all(|f| f.outcome.verdict.is_safe())
    }

    /// The detection entry for one violation class, if measured.
    pub fn detection(&self, class: OddViolation) -> Option<&ViolationDetection> {
        self.violations.iter().find(|v| v.class == class)
    }
}

/// Everything a workflow run produces.
#[derive(Debug, Clone)]
pub struct WorkflowOutcome {
    /// The trained perception network.
    pub perception: Network,
    /// The cut layer used for verification.
    pub cut_layer: usize,
    /// Final training loss of the perception network.
    pub perception_loss: f64,
    /// The activation envelope built from the training data.
    pub envelope: ActivationEnvelope,
    /// Characterizer for the output-related property ("road bends right").
    pub bend_characterizer: Characterizer,
    /// Held-out accuracy per property name (experiment E3).
    pub characterizer_accuracies: Vec<(String, f64)>,
    /// Verification experiments (E1, E2 and the strategy comparison).
    pub experiments: Vec<ExperimentResult>,
    /// Table-I statistical analysis for the bend characterizer.
    pub statistical: StatisticalAnalysis,
    /// Fraction of held-out in-ODD frames accepted by the runtime monitor.
    pub monitor_in_odd_rate: f64,
    /// Fraction of out-of-ODD frames flagged by the runtime monitor.
    pub monitor_out_of_odd_detection: f64,
    /// Sharded-envelope artefacts, when `envelope_shards > 1`.
    pub sharded: Option<ShardedArtifacts>,
    /// Scenario-mix artefacts (family E1 verification and the per-class
    /// out-of-ODD detection table), when `scenario_samples` or
    /// `violation_samples` is non-zero.
    pub scenario: Option<ScenarioReport>,
}

impl WorkflowOutcome {
    /// Renders a multi-line report covering every experiment.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("=== Direct-perception safety verification workflow ===\n");
        out.push_str(&format!(
            "perception network: {} layers, {} parameters, final training loss {:.4}\n",
            self.perception.len(),
            self.perception.parameter_count(),
            self.perception_loss
        ));
        out.push_str(&format!(
            "cut layer {} (dimension {}), envelope from {} samples\n\n",
            self.cut_layer,
            self.envelope.dim(),
            self.envelope.sample_count()
        ));

        out.push_str("-- E3: characterizer accuracy by property (held out) --\n");
        for (name, acc) in &self.characterizer_accuracies {
            out.push_str(&format!("  {name:<20} {acc:.3}\n"));
        }
        out.push('\n');

        for experiment in &self.experiments {
            out.push_str(&format!(
                "-- {}: {} --\n",
                experiment.id, experiment.description
            ));
            for outcome in &experiment.outcomes {
                out.push_str(&format!("  {}\n", outcome.summary()));
            }
            out.push('\n');
        }

        out.push_str("-- Table I (statistical guarantee) --\n");
        out.push_str(&self.statistical.table().render());
        out.push_str(&format!(
            "\n  unsafe misses among γ-mass examples: {}\n\n",
            self.statistical.unsafe_misses()
        ));

        out.push_str("-- Runtime monitor --\n");
        out.push_str(&format!(
            "  in-ODD acceptance:        {:.3}\n  out-of-ODD detection:     {:.3}\n",
            self.monitor_in_odd_rate, self.monitor_out_of_odd_detection
        ));

        if let Some(sharded) = &self.sharded {
            out.push_str(&format!(
                "\n-- Sharded envelope ({} shards) --\n",
                sharded.envelope.shard_count()
            ));
            out.push_str(&format!(
                "  E1 per-shard: {}\n",
                sharded.verification.summary()
            ));
            out.push_str(&format!(
                "  in-ODD acceptance:        {:.3}\n  out-of-ODD detection:     {:.3} (monolithic {:.3})\n",
                sharded.monitor_in_odd_rate,
                sharded.monitor_out_of_odd_detection,
                self.monitor_out_of_odd_detection
            ));
        }

        if let Some(scenario) = &self.scenario {
            if !scenario.families.is_empty() {
                out.push_str("\n-- Scenario families (per-class E1 verification) --\n");
                for family in &scenario.families {
                    out.push_str(&format!(
                        "  {:<20} ({} scenes)  {}\n",
                        family.property.name(),
                        family.samples,
                        family.outcome.summary()
                    ));
                }
            }
            if !scenario.violations.is_empty() {
                out.push_str("\n-- Out-of-ODD taxonomy (detection per violation class) --\n");
                out.push_str(&format!(
                    "  {:<20} {:>7} {:>11} {:>9}\n",
                    "class", "frames", "monolithic", "sharded"
                ));
                for detection in &scenario.violations {
                    let sharded = detection
                        .sharded_rate()
                        .map_or_else(|| "    -".to_string(), |r| format!("{r:9.3}"));
                    out.push_str(&format!(
                        "  {:<20} {:>7} {:>11.3} {}\n",
                        detection.class.name(),
                        detection.frames,
                        detection.monolithic_rate(),
                        sharded
                    ));
                }
            }
        }
        out
    }
}

/// The end-to-end workflow driver.
#[derive(Debug, Clone)]
pub struct Workflow {
    config: WorkflowConfig,
    backend: Arc<dyn SolverBackend>,
}

impl Workflow {
    /// Creates a workflow from a configuration. With
    /// `config.solver_workers > 1` verification solves go through the
    /// parallel branch-and-bound backend; otherwise the serial default.
    pub fn new(config: WorkflowConfig) -> Self {
        let backend: Arc<dyn SolverBackend> = if config.solver_workers > 1 {
            Arc::new(ParallelBranchAndBoundBackend::new(config.solver_workers))
        } else {
            Arc::new(default_backend())
        };
        Self::with_backend(config, backend)
    }

    /// Creates a workflow whose verification stages solve through `backend`.
    pub fn with_backend(config: WorkflowConfig, backend: Arc<dyn SolverBackend>) -> Self {
        Self { config, backend }
    }

    /// The configuration.
    pub fn config(&self) -> &WorkflowConfig {
        &self.config
    }

    /// The solver backend used by the verification stages.
    pub fn backend(&self) -> &dyn SolverBackend {
        self.backend.as_ref()
    }

    /// Builds the perception architecture used throughout the experiments:
    /// a small convolutional front-end followed by dense/ReLU layers and a
    /// two-dimensional affordance head (waypoint offset, orientation).
    pub fn build_perception<R: rand::Rng + ?Sized>(scene: &SceneConfig, rng: &mut R) -> Network {
        NetworkBuilder::with_image_input(TensorShape::new(1, scene.height, scene.width))
            .conv2d(4, 3, 2, rng)
            .activation(Activation::ReLU)
            .flatten()
            .dense(32, rng)
            .activation(Activation::ReLU)
            .dense(16, rng)
            .activation(Activation::ReLU)
            .dense(dpv_scenegen::AFFORDANCE_DIM, rng)
            .build()
    }

    /// Runs every stage and collects the results.
    ///
    /// # Errors
    /// Propagates data-assembly and encoding errors.
    pub fn run(&self) -> Result<WorkflowOutcome, CoreError> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // 1. ODD data for the perception task.
        let generator = GeneratorConfig {
            scene: cfg.scene,
            samples: cfg.training_samples,
            seed: cfg.seed ^ 0x11,
            threads: 1,
        };
        let bundle = DatasetBundle::generate(&generator);
        let perception_data = bundle.to_perception_dataset(&cfg.scene)?;

        // 2. Train the perception network.
        let mut perception = Self::build_perception(&cfg.scene, &mut rng);
        let train_config = TrainConfig {
            epochs: cfg.perception_epochs,
            learning_rate: 0.003,
            batch_size: 16,
            optimizer: OptimizerKind::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
            shuffle: true,
            verbose: false,
        };
        let history = train(
            &mut perception,
            &perception_data,
            &train_config,
            LossKind::Mse,
            &mut rng,
        );
        let cut_layer = cfg.cut_layer.min(perception.len() - 2);

        // 3. Train characterizers: the output-related bend property and the
        //    output-unrelated adjacent-traffic property (experiment E3).
        let bend_examples = self.property_examples(PropertyKind::BendsRight, cfg.seed ^ 0x22);
        let traffic_examples =
            self.property_examples(PropertyKind::AdjacentTraffic, cfg.seed ^ 0x33);
        let bend_characterizer = Characterizer::train(
            InputProperty::new("bends_right", "the road strongly bends to the right"),
            &perception,
            cut_layer,
            &bend_examples,
            &cfg.characterizer,
            &mut rng,
        )?;
        let traffic_characterizer = Characterizer::train(
            InputProperty::new("adjacent_traffic", "a vehicle occupies the adjacent lane"),
            &perception,
            cut_layer,
            &traffic_examples,
            &cfg.characterizer,
            &mut rng,
        )?;

        let bend_holdout = self.property_examples(PropertyKind::BendsRight, cfg.seed ^ 0x44);
        let traffic_holdout =
            self.property_examples(PropertyKind::AdjacentTraffic, cfg.seed ^ 0x55);
        let characterizer_accuracies = vec![
            (
                "bends_right".to_string(),
                bend_characterizer.accuracy(&perception, &bend_holdout),
            ),
            (
                "adjacent_traffic".to_string(),
                traffic_characterizer.accuracy(&perception, &traffic_holdout),
            ),
        ];

        // 4. Activation envelope from the training images (assume-guarantee S̃).
        let envelope = ActivationEnvelope::from_inputs(
            &perception,
            cut_layer,
            &bundle.images,
            cfg.envelope_margin,
        )?;

        // 5. Verification experiments.
        let (_, tail) = perception
            .split_at(cut_layer)
            .map_err(|e| CoreError::Inconsistent(e.to_string()))?;
        let envelope_output_box = envelope.box_only().propagate(tail.layers());
        let output_lower = envelope_output_box.to_box()[0].lo;
        // "Far left" threshold: just below anything the envelope admits, so
        // the assume-guarantee proof can succeed while coarser regions fail.
        let far_left = output_lower - 0.05;

        let e1_risk = RiskCondition::new("suggest steering to the far left").output_le(0, far_left);
        let e1_problem = VerificationProblem::new(
            perception.clone(),
            cut_layer,
            bend_characterizer.clone(),
            e1_risk.clone(),
        )?;
        let e1_strategies = vec![
            VerificationStrategy::LayerAbstraction { bound: 1000.0 },
            VerificationStrategy::AbstractInterpretation {
                domain: DomainKind::Box,
            },
            VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: envelope.clone(),
                use_difference_constraints: false,
            }),
            VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: envelope.clone(),
                use_difference_constraints: true,
            }),
        ];
        // E1 solves the same (tail, characterizer, risk) triple under four
        // start regions: encode the layer skeleton once from the widest
        // region (the Lemma-1 box) and instantiate it per strategy. Regions
        // the template cannot cover (the octagon variant, or an AI box that
        // escapes the root) transparently fall back to one-shot encoding.
        let e1_template =
            e1_problem.encoding_template(&e1_problem.start_region(&e1_strategies[0])?)?;
        let mut e1_outcomes = Vec::new();
        for strategy in &e1_strategies {
            e1_outcomes.push(e1_problem.verify_with_template(
                strategy,
                &e1_template,
                self.backend.as_ref(),
            )?);
        }

        let e2_risk = RiskCondition::new("suggest steering straight")
            .output_le(0, 0.1)
            .output_ge(0, -0.1);
        let e2_problem = VerificationProblem::new(
            perception.clone(),
            cut_layer,
            bend_characterizer.clone(),
            e2_risk.clone(),
        )?;
        let e2_outcome = e2_problem.verify_with(
            &VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: envelope.clone(),
                use_difference_constraints: true,
            }),
            self.backend.as_ref(),
        )?;

        let experiments = vec![
            ExperimentResult {
                id: "E1".to_string(),
                description: format!(
                    "φ = road bends right, ψ = waypoint offset ≤ {far_left:.3} (far left); strategy comparison"
                ),
                outcomes: e1_outcomes,
            },
            ExperimentResult {
                id: "E2".to_string(),
                description: "φ = road bends right, ψ = waypoint offset in [-0.1, 0.1] (steering straight)"
                    .to_string(),
                outcomes: vec![e2_outcome],
            },
        ];

        // 6. Statistical analysis (Table I) on held-out labelled data.
        let validation = self.property_examples(PropertyKind::BendsRight, cfg.seed ^ 0x66);
        let statistical =
            StatisticalAnalysis::estimate(&perception, &bend_characterizer, &e1_risk, &validation)?;

        // 7. Runtime monitor coverage on in-ODD and out-of-ODD frames. The
        //    frames are rendered up front (in the historical RNG order) so
        //    the sharded monitor below scores the exact same frames.
        let monitor = RuntimeMonitor::new(perception.clone(), cut_layer, envelope.clone())?;
        let sampler = OddSampler::new(cfg.scene);
        let mut monitor_rng = StdRng::seed_from_u64(cfg.seed ^ 0x77);
        let in_odd_images: Vec<Vector> = (0..cfg.validation_samples)
            .map(|_| render_scene(&sampler.sample_in_odd(&mut monitor_rng), &cfg.scene))
            .collect();
        let out_of_odd_images: Vec<Vector> = (0..cfg.validation_samples)
            .map(|_| render_scene(&sampler.sample_out_of_odd(&mut monitor_rng), &cfg.scene))
            .collect();
        // One batched sweep per frame set: the forward passes run
        // matrix–matrix and the envelope containment runs over the SoA
        // bounds, with verdicts identical to per-frame `check`.
        let in_odd_accepted = monitor
            .check_frames(&in_odd_images)
            .iter()
            .filter(|verdict| verdict.is_in_odd())
            .count();
        let out_of_odd_flagged = monitor
            .check_frames(&out_of_odd_images)
            .iter()
            .filter(|verdict| !verdict.is_in_odd())
            .count();
        let n = cfg.validation_samples.max(1) as f64;

        // 8. Sharded-envelope stage (opt-in via `envelope_shards > 1`):
        //    k-means shards over the same training activations, per-shard
        //    verification of the E1 risk, and the sharded monitor scored on
        //    the same held-out frames as the monolithic one.
        let mut sharded_monitor: Option<ShardedMonitor> = None;
        let sharded = if cfg.envelope_shards > 1 {
            let sharded_envelope = ShardedEnvelope::from_inputs(
                &perception,
                cut_layer,
                &bundle.images,
                cfg.envelope_margin,
                &ShardConfig::fixed(cfg.envelope_shards).with_seed(cfg.seed ^ 0x88),
            )?;
            // One shard at a time: with `solver_workers > 1` the workflow's
            // backend already fans each solve out across that many threads,
            // so stacking shard-level workers on top would oversubscribe
            // the host quadratically. Callers wanting shard-level dispatch
            // with a serial backend use `verify_sharded_with` directly.
            let verification = e1_problem.verify_sharded_with(
                &sharded_envelope,
                &ShardedVerificationConfig {
                    use_difference_constraints: true,
                    workers: 1,
                },
                self.backend.as_ref(),
            )?;
            let monitor_for_shards =
                ShardedMonitor::new(perception.clone(), cut_layer, sharded_envelope.clone())?;
            let sharded_accepted = monitor_for_shards
                .check_frames(&in_odd_images)
                .iter()
                .filter(|verdict| verdict.is_in_odd())
                .count();
            let sharded_flagged = monitor_for_shards
                .check_frames(&out_of_odd_images)
                .iter()
                .filter(|verdict| !verdict.is_in_odd())
                .count();
            sharded_monitor = Some(monitor_for_shards);
            Some(ShardedArtifacts {
                envelope: sharded_envelope,
                verification,
                monitor_in_odd_rate: sharded_accepted as f64 / n,
                monitor_out_of_odd_detection: sharded_flagged as f64 / n,
            })
        } else {
            None
        };

        // 9. Scenario-mix stage: per-class E1 verification over scenario
        //    families (an envelope per satisfiable property class, verified
        //    with the assume-guarantee strategy — the scenario-based
        //    compositional split of the ODD) and the out-of-ODD taxonomy
        //    detection table (per violation class, monolithic and — when
        //    available — sharded monitor rates on identical frames).
        let scenario = if cfg.scenario_samples > 0 || cfg.violation_samples > 0 {
            let mut families = Vec::new();
            if cfg.scenario_samples > 0 {
                let mut family_rng = StdRng::seed_from_u64(cfg.seed ^ 0x99);
                for property in PropertyKind::ALL {
                    if !property.satisfiable_in(&cfg.scene) {
                        continue;
                    }
                    let family_images: Vec<Vector> = (0..cfg.scenario_samples)
                        .map(|_| {
                            let scene = sampler
                                .sample_where(&mut family_rng, |s| property.holds(s, &cfg.scene));
                            render_scene(&scene, &cfg.scene)
                        })
                        .collect();
                    let family_envelope = ActivationEnvelope::from_inputs(
                        &perception,
                        cut_layer,
                        &family_images,
                        cfg.envelope_margin,
                    )?;
                    let outcome = e1_problem.verify_with(
                        &VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                            envelope: family_envelope,
                            use_difference_constraints: true,
                        }),
                        self.backend.as_ref(),
                    )?;
                    families.push(ScenarioFamilyResult {
                        property,
                        samples: cfg.scenario_samples,
                        outcome,
                    });
                }
            }
            let mut violations = Vec::new();
            if cfg.violation_samples > 0 {
                let mut violation_rng = StdRng::seed_from_u64(cfg.seed ^ 0xaa);
                for class in OddViolation::ALL {
                    // Render the class's frames first (same RNG stream order
                    // as the historical per-frame loop), then score both
                    // monitors with one batched sweep each.
                    let images: Vec<Vector> = (0..cfg.violation_samples)
                        .map(|_| {
                            render_scene(
                                &sampler.sample_violation(class, &mut violation_rng),
                                &cfg.scene,
                            )
                        })
                        .collect();
                    let monolithic_flagged = monitor
                        .check_frames(&images)
                        .iter()
                        .filter(|verdict| !verdict.is_in_odd())
                        .count();
                    let sharded_flagged = sharded_monitor.as_ref().map(|shard_monitor| {
                        shard_monitor
                            .check_frames(&images)
                            .iter()
                            .filter(|verdict| !verdict.is_in_odd())
                            .count()
                    });
                    violations.push(ViolationDetection {
                        class,
                        frames: cfg.violation_samples,
                        monolithic_flagged,
                        sharded_flagged,
                    });
                }
            }
            Some(ScenarioReport {
                families,
                violations,
            })
        } else {
            None
        };

        Ok(WorkflowOutcome {
            perception,
            cut_layer,
            perception_loss: history.final_loss(),
            envelope,
            bend_characterizer,
            characterizer_accuracies,
            experiments,
            statistical,
            monitor_in_odd_rate: in_odd_accepted as f64 / n,
            monitor_out_of_odd_detection: out_of_odd_flagged as f64 / n,
            sharded,
            scenario,
        })
    }

    /// Balanced labelled `(image, φ holds)` examples for a property.
    fn property_examples(&self, property: PropertyKind, seed: u64) -> Vec<(Vector, bool)> {
        let mut rng = StdRng::seed_from_u64(seed);
        dpv_scenegen::property_examples(
            &self.config.scene,
            property,
            self.config.characterizer_samples,
            &mut rng,
        )
    }

    /// Ground-truth affordance for a scene — exposed so examples can compare
    /// network predictions against the oracle.
    pub fn oracle_affordance(&self, scene: &dpv_scenegen::SceneParams) -> Vector {
        affordance(scene, &self.config.scene)
    }

    /// Renders a dataset for external evaluation (same pipeline the run uses).
    ///
    /// # Errors
    /// Propagates dataset-construction errors.
    pub fn perception_dataset(&self, samples: usize, seed: u64) -> Result<Dataset, CoreError> {
        let generator = GeneratorConfig {
            scene: self.config.scene,
            samples,
            seed,
            threads: 1,
        };
        Ok(DatasetBundle::generate(&generator).to_perception_dataset(&self.config.scene)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;

    fn tiny_config() -> WorkflowConfig {
        WorkflowConfig {
            training_samples: 60,
            characterizer_samples: 60,
            validation_samples: 40,
            perception_epochs: 4,
            characterizer: CharacterizerConfig {
                hidden: vec![6],
                epochs: 30,
                ..CharacterizerConfig::small()
            },
            ..WorkflowConfig::small()
        }
    }

    #[test]
    fn solver_workers_selects_the_parallel_backend() {
        let serial = Workflow::new(tiny_config());
        assert_eq!(serial.backend().name(), "branch-and-bound");
        let parallel = Workflow::new(WorkflowConfig {
            solver_workers: 4,
            ..tiny_config()
        });
        assert_eq!(parallel.backend().name(), "parallel-bnb(4)");
    }

    #[test]
    fn workflow_runs_end_to_end() {
        let outcome = Workflow::new(tiny_config()).run().unwrap();
        assert_eq!(outcome.experiments.len(), 2);
        assert_eq!(outcome.experiments[0].outcomes.len(), 4);
        // Every training image must be inside the envelope by construction.
        assert!(outcome.monitor_in_odd_rate >= 0.0);
        let report = outcome.report();
        assert!(report.contains("E1"));
        assert!(report.contains("E2"));
        assert!(report.contains("Table I"));
        assert!(report.contains("Runtime monitor"));
    }

    #[test]
    fn assume_guarantee_with_differences_proves_e1() {
        let outcome = Workflow::new(tiny_config()).run().unwrap();
        let e1 = &outcome.experiments[0];
        // The last strategy is assume-guarantee with difference constraints.
        let ag = e1.outcomes.last().unwrap();
        assert!(
            ag.verdict.is_safe(),
            "assume-guarantee failed to prove E1: {}",
            ag.summary()
        );
        // The conservative Lemma-1 box cannot prove the same property.
        let lemma1 = &e1.outcomes[0];
        assert!(!lemma1.verdict.is_safe(), "Lemma 1 unexpectedly proved E1");
    }

    #[test]
    fn e2_is_not_provable_and_ships_a_counterexample() {
        let outcome = Workflow::new(tiny_config()).run().unwrap();
        let e2 = &outcome.experiments[1];
        match &e2.outcomes[0].verdict {
            Verdict::Unsafe(ce) => {
                assert_eq!(ce.output.len(), 2);
                assert!(ce.output[0] <= 0.1 + 1e-6 && ce.output[0] >= -0.1 - 1e-6);
            }
            other => panic!("expected E2 to be unprovable, got {other:?}"),
        }
    }

    #[test]
    fn envelope_shards_stage_is_skipped_by_default() {
        let outcome = Workflow::new(tiny_config()).run().unwrap();
        assert!(outcome.sharded.is_none());
        assert!(!outcome.report().contains("Sharded envelope"));
    }

    #[test]
    fn sharded_stage_produces_consistent_artifacts() {
        let outcome = Workflow::new(WorkflowConfig {
            envelope_shards: 3,
            ..tiny_config()
        })
        .run()
        .unwrap();
        let sharded = outcome.sharded.as_ref().expect("sharded stage requested");
        assert!(sharded.envelope.shard_count() >= 2);
        assert_eq!(
            sharded.verification.shards.len(),
            sharded.envelope.shard_count()
        );
        // The per-shard E1 verdict agrees with the monolithic
        // assume-guarantee outcome (shards are subsets of the envelope, so
        // a monolithic Safe stays Safe per shard).
        let monolithic_e1 = outcome.experiments[0].outcomes.last().unwrap();
        if monolithic_e1.verdict.is_safe() {
            assert!(
                sharded.verification.verdict.is_safe(),
                "{}",
                sharded.verification.summary()
            );
        }
        // The shard union is tighter than the single octagon: acceptance
        // can only drop, detection can only rise (same frames scored).
        assert!(sharded.monitor_in_odd_rate <= outcome.monitor_in_odd_rate);
        assert!(sharded.monitor_out_of_odd_detection >= outcome.monitor_out_of_odd_detection);
        let report = outcome.report();
        assert!(report.contains("Sharded envelope"));
        assert!(report.contains("E1 per-shard"));
    }

    #[test]
    fn scenario_stage_reports_families_and_violation_classes() {
        let outcome = Workflow::new(tiny_config()).run().unwrap();
        let scenario = outcome
            .scenario
            .as_ref()
            .expect("scenario stage on by default");
        // Under the legacy small scene config only the five historical
        // properties are satisfiable; the diversity families need
        // SceneConfig::diverse().
        assert_eq!(scenario.families.len(), 5);
        assert!(scenario
            .families
            .iter()
            .all(|f| f.samples == tiny_config().scenario_samples));
        assert_eq!(scenario.violations.len(), OddViolation::ALL.len());
        for detection in &scenario.violations {
            assert_eq!(detection.frames, tiny_config().violation_samples);
            assert!(detection.monolithic_rate() >= 0.0 && detection.monolithic_rate() <= 1.0);
            // No sharded stage requested, so no sharded column.
            assert!(detection.sharded_flagged.is_none());
        }
        let report = outcome.report();
        assert!(report.contains("Scenario families"));
        assert!(report.contains("Out-of-ODD taxonomy"));
        assert!(report.contains("extreme-curvature"));
    }

    #[test]
    fn scenario_stage_with_shards_dominates_monolithic_detection() {
        let outcome = Workflow::new(WorkflowConfig {
            envelope_shards: 3,
            scenario_samples: 0,
            ..tiny_config()
        })
        .run()
        .unwrap();
        let scenario = outcome
            .scenario
            .as_ref()
            .expect("violation table requested");
        assert!(scenario.families.is_empty());
        for detection in &scenario.violations {
            let sharded = detection.sharded_flagged.expect("sharded rates measured");
            assert!(
                sharded >= detection.monolithic_flagged,
                "{}: sharded {} < monolithic {}",
                detection.class,
                sharded,
                detection.monolithic_flagged
            );
        }
        assert!(scenario
            .detection(OddViolation::Blackout)
            .is_some_and(|d| d.frames > 0));
    }

    /// The e10 detection tables are produced by batched `check_frames`
    /// sweeps; replaying the same violation RNG stream through per-frame
    /// `check` must reproduce every count exactly — one containment code
    /// path, not two that can drift.
    #[test]
    fn detection_table_matches_per_frame_monitoring() {
        let cfg = tiny_config();
        let outcome = Workflow::new(cfg.clone()).run().unwrap();
        let scenario = outcome.scenario.as_ref().expect("scenario stage");
        assert!(cfg.violation_samples > 0);
        let monitor = RuntimeMonitor::new(
            outcome.perception.clone(),
            outcome.cut_layer,
            outcome.envelope.clone(),
        )
        .unwrap();
        let sampler = OddSampler::new(cfg.scene);
        let mut violation_rng = StdRng::seed_from_u64(cfg.seed ^ 0xaa);
        for detection in &scenario.violations {
            let flagged = (0..cfg.violation_samples)
                .filter(|_| {
                    let image = render_scene(
                        &sampler.sample_violation(detection.class, &mut violation_rng),
                        &cfg.scene,
                    );
                    !monitor.check(&image).is_in_odd()
                })
                .count();
            assert_eq!(
                detection.monolithic_flagged, flagged,
                "{}: batched table drifted from per-frame checks",
                detection.class
            );
        }
    }

    #[test]
    fn scenario_stage_is_skipped_when_disabled() {
        let outcome = Workflow::new(WorkflowConfig {
            scenario_samples: 0,
            violation_samples: 0,
            ..tiny_config()
        })
        .run()
        .unwrap();
        assert!(outcome.scenario.is_none());
        assert!(!outcome.report().contains("Out-of-ODD taxonomy"));
    }

    #[test]
    fn diverse_scene_config_adds_the_diversity_families() {
        let outcome = Workflow::new(WorkflowConfig {
            scene: SceneConfig::diverse(),
            violation_samples: 0,
            ..tiny_config()
        })
        .run()
        .unwrap();
        let scenario = outcome.scenario.as_ref().unwrap();
        assert_eq!(scenario.families.len(), PropertyKind::ALL.len());
        let names: Vec<_> = scenario
            .families
            .iter()
            .map(|f| f.property.name())
            .collect();
        assert!(names.contains(&"occluded"));
        assert!(names.contains(&"heavy_rain"));
        assert!(names.contains(&"dashed_lane"));
    }

    #[test]
    fn information_bottleneck_hurts_the_traffic_characterizer() {
        let outcome = Workflow::new(tiny_config()).run().unwrap();
        let bend = outcome
            .characterizer_accuracies
            .iter()
            .find(|(n, _)| n == "bends_right")
            .unwrap()
            .1;
        let traffic = outcome
            .characterizer_accuracies
            .iter()
            .find(|(n, _)| n == "adjacent_traffic")
            .unwrap()
            .1;
        assert!(
            bend > traffic,
            "expected the output-related property to be easier: bend {bend} vs traffic {traffic}"
        );
    }
}

//! Error type of the verification crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or running a verification workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The verified tail (or the characterizer) contains a layer the MILP
    /// encoder cannot represent exactly.
    NotPiecewiseLinear(String),
    /// A dimension or layer-index mismatch between the pieces of a problem.
    Inconsistent(String),
    /// Training data could not be assembled.
    Data(String),
    /// The underlying MILP solver gave up (node limit) — the result is
    /// neither "safe" nor "unsafe".
    SolverLimit(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotPiecewiseLinear(msg) => {
                write!(f, "layer is not piecewise linear: {msg}")
            }
            CoreError::Inconsistent(msg) => write!(f, "inconsistent problem: {msg}"),
            CoreError::Data(msg) => write!(f, "data error: {msg}"),
            CoreError::SolverLimit(msg) => write!(f, "solver limit reached: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<dpv_nn::NnError> for CoreError {
    fn from(value: dpv_nn::NnError) -> Self {
        CoreError::Data(value.to_string())
    }
}

impl From<dpv_tensor::TensorError> for CoreError {
    fn from(value: dpv_tensor::TensorError) -> Self {
        CoreError::Inconsistent(value.to_string())
    }
}

impl From<dpv_tensor::ShapeError> for CoreError {
    fn from(value: dpv_tensor::ShapeError) -> Self {
        CoreError::Inconsistent(value.to_string())
    }
}

impl From<dpv_monitor::MonitorError> for CoreError {
    fn from(value: dpv_monitor::MonitorError) -> Self {
        match value {
            dpv_monitor::MonitorError::Mismatch(msg) => CoreError::Inconsistent(msg),
            dpv_monitor::MonitorError::MalformedLog(msg) => CoreError::Data(msg),
            dpv_monitor::MonitorError::EmptyActivations => {
                CoreError::Data("cannot build an envelope from zero activations".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::NotPiecewiseLinear("sigmoid".into())
            .to_string()
            .contains("sigmoid"));
        assert!(CoreError::Inconsistent("dim".into())
            .to_string()
            .contains("dim"));
        assert!(CoreError::Data("empty".into())
            .to_string()
            .contains("empty"));
        assert!(CoreError::SolverLimit("nodes".into())
            .to_string()
            .contains("nodes"));
    }

    #[test]
    fn converts_nn_errors() {
        let err: CoreError = dpv_nn::NnError::InvalidDataset("x".into()).into();
        assert!(matches!(err, CoreError::Data(_)));
    }

    #[test]
    fn converts_tensor_errors() {
        let err: CoreError = dpv_tensor::TensorError::Numerical("nan".into()).into();
        assert!(matches!(err, CoreError::Inconsistent(_)));
        let err: CoreError = dpv_tensor::ShapeError::new("matmul", (2, 3), (4, 5)).into();
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn converts_monitor_errors() {
        let err: CoreError = dpv_monitor::MonitorError::Mismatch("dim".into()).into();
        assert!(matches!(err, CoreError::Inconsistent(_)));
        let err: CoreError = dpv_monitor::MonitorError::MalformedLog("short".into()).into();
        assert!(matches!(err, CoreError::Data(_)));
    }
}

//! Property-based tests for the LP/MILP solver: random small instances are
//! compared against brute-force enumeration / sampled feasibility checks.

use dpv_lp::{
    encode_relu_big_m, ConstraintOp, ExhaustiveBackend, LinearProgram, LpStatus, MilpProblem,
    MilpStatus, ParallelBranchAndBoundBackend, SolverBackend,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random bounded LP with `n` variables in [0, 10] and `m` ≤-constraints.
fn random_lp(seed: u64, n: usize, m: usize) -> LinearProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LinearProgram::new();
    let vars: Vec<_> = (0..n).map(|_| lp.add_variable(0.0, 10.0)).collect();
    let obj: Vec<_> = vars
        .iter()
        .map(|&v| (v, rng.gen_range(-2.0..2.0)))
        .collect();
    lp.set_objective(&obj, true);
    for _ in 0..m {
        let coeffs: Vec<_> = vars
            .iter()
            .map(|&v| (v, rng.gen_range(-1.0..2.0)))
            .collect();
        lp.add_constraint(&coeffs, ConstraintOp::Le, rng.gen_range(1.0..15.0));
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any optimum the simplex reports must be primal feasible, and no
    /// sampled feasible point may beat it.
    #[test]
    fn simplex_optimum_is_feasible_and_not_beaten_by_samples(seed in 0u64..2000) {
        let lp = random_lp(seed, 4, 3);
        let solution = lp.solve();
        // Bounded boxes mean the LP can never be unbounded.
        prop_assert_ne!(solution.status, LpStatus::Unbounded);
        if solution.status == LpStatus::Optimal {
            prop_assert!(lp.is_feasible(&solution.values, 1e-6));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
            for _ in 0..200 {
                let candidate: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..10.0)).collect();
                if lp.is_feasible(&candidate, 1e-9) {
                    prop_assert!(lp.objective_value(&candidate) <= solution.objective + 1e-6);
                }
            }
        }
    }

    /// The box [0,10]^n with no constraints is always feasible, so a random
    /// ≤-constraint LP with non-negative rhs must be feasible too (the origin
    /// satisfies every constraint with rhs >= 0).
    #[test]
    fn lps_with_nonnegative_rhs_are_feasible(seed in 0u64..2000) {
        let lp = random_lp(seed, 3, 4);
        prop_assert_eq!(lp.solve().status, LpStatus::Optimal);
    }

    /// Binary knapsack MILPs are compared against exhaustive enumeration.
    #[test]
    fn milp_matches_brute_force_on_knapsacks(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 5usize;
        let profits: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..10.0)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..5.0)).collect();
        let capacity: f64 = rng.gen_range(3.0..10.0);

        let mut milp = MilpProblem::new();
        let vars: Vec<_> = (0..n).map(|_| milp.add_binary()).collect();
        let obj: Vec<_> = vars.iter().zip(&profits).map(|(&v, &p)| (v, p)).collect();
        milp.lp_mut().set_objective(&obj, true);
        let cons: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        milp.lp_mut().add_constraint(&cons, ConstraintOp::Le, capacity);
        let solution = milp.solve();
        prop_assert_eq!(solution.status, MilpStatus::Optimal);

        // Brute force over the 2^5 assignments.
        let mut best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << n) {
            let weight: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| weights[i]).sum();
            if weight <= capacity + 1e-9 {
                let profit: f64 = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| profits[i]).sum();
                best = best.max(profit);
            }
        }
        prop_assert!((solution.objective - best).abs() < 1e-5,
            "milp {} vs brute force {}", solution.objective, best);
    }

    /// The big-M ReLU encoding is exact: for random fixed inputs the encoded
    /// output must equal max(0, x).
    #[test]
    fn relu_encoding_is_exact(x in -5.0f64..5.0) {
        let (lower, upper) = (-5.0, 5.0);
        let mut milp = MilpProblem::new();
        let xin = milp.add_variable(lower, upper);
        let y = milp.add_variable(0.0, f64::INFINITY);
        encode_relu_big_m(&mut milp, xin, y, lower, upper);
        milp.lp_mut().tighten_bounds(xin, x, x);
        milp.lp_mut().set_objective(&[(y, 1.0)], true);
        let hi = milp.solve();
        milp.lp_mut().set_objective(&[(y, 1.0)], false);
        let lo = milp.solve();
        prop_assert_eq!(hi.status, MilpStatus::Optimal);
        prop_assert_eq!(lo.status, MilpStatus::Optimal);
        prop_assert!((hi.objective - x.max(0.0)).abs() < 1e-6);
        prop_assert!((lo.objective - x.max(0.0)).abs() < 1e-6);
    }

    /// The parallel branch-and-bound backend must agree with the exhaustive
    /// enumeration oracle on random small MILPs: same status, and (when an
    /// optimum exists) objectives within 1e-6. Mixed ≤/≥ constraints make
    /// both infeasible and feasible instances likely.
    #[test]
    fn parallel_backend_agrees_with_exhaustive_oracle(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b9);
        let n_bin = 4usize;
        let mut milp = MilpProblem::new();
        let bins: Vec<_> = (0..n_bin).map(|_| milp.add_binary()).collect();
        let w = milp.add_variable(0.0, 3.0);
        let maximize = seed % 2 == 0;
        let mut obj: Vec<_> = bins
            .iter()
            .map(|&v| (v, rng.gen_range(-3.0..3.0)))
            .collect();
        obj.push((w, rng.gen_range(-1.0..1.0)));
        milp.lp_mut().set_objective(&obj, maximize);
        for _ in 0..3 {
            let mut coeffs: Vec<_> = bins
                .iter()
                .map(|&v| (v, rng.gen_range(-2.0..2.0)))
                .collect();
            coeffs.push((w, rng.gen_range(-1.0..1.0)));
            let op = if rng.gen_range(0.0..1.0) < 0.5 { ConstraintOp::Le } else { ConstraintOp::Ge };
            milp.lp_mut().add_constraint(&coeffs, op, rng.gen_range(-2.0..4.0));
        }

        let parallel = ParallelBranchAndBoundBackend::new(4).solve(&milp);
        let oracle = ExhaustiveBackend::default().solve(&milp);
        prop_assert_eq!(parallel.status, oracle.status,
            "parallel {:?} vs oracle {:?}", parallel.status, oracle.status);
        if oracle.status == MilpStatus::Optimal {
            prop_assert!((parallel.objective - oracle.objective).abs() < 1e-6,
                "parallel {} vs oracle {}", parallel.objective, oracle.objective);
            prop_assert!(milp.is_feasible(&parallel.values, 1e-6));
        }
    }

    /// Warm re-solving from a parent basis after random bound tightenings
    /// must agree with a fresh cold solve — same status and (when optimal)
    /// the same objective. Covers ~400 random LPs × 4 successive
    /// tightenings, including tightenings that drive the program infeasible,
    /// with mixed ≤/≥/= constraints so every standard-form row shape is
    /// exercised.
    #[test]
    fn warm_restart_agrees_with_cold_solve(seed in 0u64..400) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1ab1e);
        let n = 4usize;
        let mut lp = LinearProgram::new();
        let vars: Vec<_> = (0..n).map(|_| lp.add_variable(-5.0, 5.0)).collect();
        let obj: Vec<_> = vars
            .iter()
            .map(|&v| (v, rng.gen_range(-2.0..2.0)))
            .collect();
        lp.set_objective(&obj, seed % 2 == 0);
        for _ in 0..3 {
            let coeffs: Vec<_> = vars
                .iter()
                .map(|&v| (v, rng.gen_range(-1.5..1.5)))
                .collect();
            let pick: f64 = rng.gen_range(0.0..1.0);
            let op = if pick < 0.4 {
                ConstraintOp::Le
            } else if pick < 0.8 {
                ConstraintOp::Ge
            } else {
                ConstraintOp::Eq
            };
            lp.add_constraint(&coeffs, op, rng.gen_range(-2.0..2.0));
        }

        let (root, snapshot) = lp.solve_with_snapshot();
        prop_assume!(root.status == LpStatus::Optimal);
        let mut snapshot = snapshot.expect("optimal cold solves yield a snapshot");

        for round in 0..4 {
            // Tighten a random variable to a random sub-range (possibly a
            // point), keeping lo <= hi.
            let var = vars[rng.gen_range(0..n)];
            let a = rng.gen_range(-5.0..5.0);
            let b = rng.gen_range(-5.0..5.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            lp.set_bounds(var, lo, hi);

            let cold = lp.solve();
            match lp.solve_from_basis(&mut snapshot) {
                Some(warm) => {
                    prop_assert!(warm.warm_started);
                    prop_assert_eq!(warm.status, cold.status,
                        "round {}: warm {:?} vs cold {:?}", round, warm.status, cold.status);
                    if cold.status == LpStatus::Optimal {
                        prop_assert!((warm.objective - cold.objective).abs() < 1e-5,
                            "round {}: warm {} vs cold {}", round, warm.objective, cold.objective);
                        prop_assert!(lp.is_feasible(&warm.values, 1e-6));
                    }
                }
                None => {
                    // A numerical bail-out is allowed; re-seed from cold.
                    let (_, fresh) = lp.solve_with_snapshot();
                    match fresh {
                        Some(fresh) => snapshot = fresh,
                        None => break,
                    }
                }
            }
        }
    }

    /// Equality-constrained LPs: solving Ax = b with a known feasible point
    /// must report a feasible optimum.
    #[test]
    fn equality_systems_with_known_solutions_are_feasible(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 3usize;
        let point: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
        let mut lp = LinearProgram::new();
        let vars: Vec<_> = (0..n).map(|_| lp.add_variable(0.0, 5.0)).collect();
        for _ in 0..2 {
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(-1.0..1.0))).collect();
            let rhs: f64 = coeffs.iter().map(|(v, c)| c * point[*v]).sum();
            lp.add_constraint(&coeffs, ConstraintOp::Eq, rhs);
        }
        let obj: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(-1.0..1.0))).collect();
        lp.set_objective(&obj, false);
        let solution = lp.solve();
        prop_assert_eq!(solution.status, LpStatus::Optimal);
        prop_assert!(lp.is_feasible(&solution.values, 1e-5));
        prop_assert!(solution.objective <= lp.objective_value(&point) + 1e-6);
    }
}

//! LP model builder and solution types.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::simplex;

/// Index of a decision variable within a [`LinearProgram`].
pub type VarId = usize;

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        })
    }
}

/// One linear constraint `Σ coeff_i · x_i  op  rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse coefficient list `(variable, coefficient)`.
    pub coeffs: Vec<(VarId, f64)>,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint system is infeasible.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The simplex iteration budget was exhausted before the solve finished —
    /// numerical trouble or an adversarially degenerate model. Neither
    /// optimality nor infeasibility was established; callers must treat the
    /// outcome as "unknown" rather than aborting.
    IterationLimit,
    /// A [`crate::CancelToken`] tripped (explicit cancellation or an expired
    /// deadline) before the solve finished. Like
    /// [`LpStatus::IterationLimit`] this establishes neither optimality nor
    /// infeasibility — the solve simply stopped cooperating early.
    Cancelled,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Optimal variable assignment (empty unless `status == Optimal`).
    pub values: Vec<f64>,
    /// Optimal objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Simplex pivots performed by this solve (all phases).
    pub iterations: usize,
    /// `true` when the solve was taken warm from a [`BasisSnapshot`]
    /// (dual-simplex repair) instead of running the two cold phases.
    ///
    /// [`BasisSnapshot`]: crate::BasisSnapshot
    pub warm_started: bool,
}

impl LpSolution {
    /// Convenience constructor for non-optimal outcomes.
    pub(crate) fn non_optimal(status: LpStatus) -> Self {
        Self {
            status,
            values: Vec::new(),
            objective: 0.0,
            iterations: 0,
            warm_started: false,
        }
    }

    /// Returns `true` when an optimum was found.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

/// A linear program with per-variable bounds.
///
/// Variables are created with [`LinearProgram::add_variable`], which returns
/// a [`VarId`] used in constraint and objective coefficient lists. The
/// objective defaults to the constant zero (pure feasibility problem).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearProgram {
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    pub(crate) objective: Vec<f64>,
    pub(crate) maximize: bool,
    pub(crate) constraints: Vec<Constraint>,
    /// Optional simplex pivot budget; `None` selects a size-derived default.
    pub(crate) max_iterations: Option<usize>,
}

impl Default for LinearProgram {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearProgram {
    /// Creates an empty program (no variables, zero objective).
    pub fn new() -> Self {
        Self {
            lower: Vec::new(),
            upper: Vec::new(),
            objective: Vec::new(),
            maximize: false,
            constraints: Vec::new(),
            max_iterations: None,
        }
    }

    /// Pre-allocates storage for `vars` additional variables and `rows`
    /// additional constraints. Encoders that know their output size up front
    /// (e.g. the layer-skeleton template in `dpv-core`) use this to avoid
    /// repeated re-allocation while the model grows.
    pub fn reserve(&mut self, vars: usize, rows: usize) {
        self.lower.reserve(vars);
        self.upper.reserve(vars);
        self.objective.reserve(vars);
        self.constraints.reserve(rows);
    }

    /// Adds a variable with bounds `[lower, upper]` (either may be infinite)
    /// and returns its id.
    ///
    /// # Panics
    /// Panics when `lower > upper` or either bound is NaN.
    pub fn add_variable(&mut self, lower: f64, upper: f64) -> VarId {
        assert!(
            !lower.is_nan() && !upper.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(
            lower <= upper,
            "lower bound {lower} exceeds upper bound {upper}"
        );
        self.lower.push(lower);
        self.upper.push(upper);
        self.objective.push(0.0);
        self.lower.len() - 1
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.lower.len()
    }

    /// Number of row constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Bounds of a variable.
    ///
    /// # Panics
    /// Panics when `var` is out of range.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.lower[var], self.upper[var])
    }

    /// Tightens the bounds of an existing variable (intersection with the
    /// current bounds).
    ///
    /// # Panics
    /// Panics when `var` is out of range.
    pub fn tighten_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        self.lower[var] = self.lower[var].max(lower);
        self.upper[var] = self.upper[var].min(upper);
    }

    /// Overwrites the bounds of an existing variable. Unlike
    /// [`LinearProgram::tighten_bounds`] this does not intersect with the
    /// current bounds, which lets branch-and-bound solvers fix a variable on
    /// descent and *restore* its saved bounds on backtrack against a single
    /// scratch program instead of cloning the whole model per node.
    ///
    /// # Panics
    /// Panics when `var` is out of range, `lower > upper`, or either bound
    /// is NaN.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        assert!(
            !lower.is_nan() && !upper.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(
            lower <= upper,
            "lower bound {lower} exceeds upper bound {upper}"
        );
        self.lower[var] = lower;
        self.upper[var] = upper;
    }

    /// Sets the objective `Σ coeff_i · x_i`, maximised when `maximize` is
    /// `true` and minimised otherwise. Variables not mentioned keep
    /// coefficient zero.
    pub fn set_objective(&mut self, coeffs: &[(VarId, f64)], maximize: bool) {
        for c in &mut self.objective {
            *c = 0.0;
        }
        for (var, coeff) in coeffs {
            self.objective[*var] += coeff;
        }
        self.maximize = maximize;
    }

    /// Adds a row constraint.
    ///
    /// # Panics
    /// Panics when a referenced variable does not exist or the right-hand
    /// side is NaN.
    pub fn add_constraint(&mut self, coeffs: &[(VarId, f64)], op: ConstraintOp, rhs: f64) {
        assert!(!rhs.is_nan(), "constraint rhs must not be NaN");
        for (var, _) in coeffs {
            assert!(
                *var < self.num_variables(),
                "constraint references unknown variable {var}"
            );
        }
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            op,
            rhs,
        });
    }

    /// Overwrites the right-hand side of an existing constraint, leaving its
    /// coefficients and operator untouched. This is a *bound-shaped* edit:
    /// like [`LinearProgram::set_bounds`] it only moves the standard-form
    /// right-hand side, so warm restarts from a [`crate::BasisSnapshot`]
    /// remain valid across it (the refinement template uses this for the
    /// octagon difference rows).
    ///
    /// # Panics
    /// Panics when `index` is out of range or `rhs` is NaN.
    pub fn set_constraint_rhs(&mut self, index: usize, rhs: f64) {
        assert!(!rhs.is_nan(), "constraint rhs must not be NaN");
        self.constraints[index].rhs = rhs;
    }

    /// Overrides the simplex pivot budget (`None` restores the size-derived
    /// default). When the budget runs out a solve reports
    /// [`LpStatus::IterationLimit`] instead of panicking.
    pub fn set_iteration_limit(&mut self, limit: Option<usize>) {
        self.max_iterations = limit;
    }

    /// The explicit simplex pivot budget, when one was set.
    pub fn iteration_limit(&self) -> Option<usize> {
        self.max_iterations
    }

    /// Objective coefficients (dense, aligned with variable ids).
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Whether the objective is maximised.
    pub fn is_maximization(&self) -> bool {
        self.maximize
    }

    /// The row constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates `Σ coeff_i · x_i` for an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(values.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Checks whether `values` satisfies all bounds and constraints up to
    /// tolerance `eps`.
    pub fn is_feasible(&self, values: &[f64], eps: f64) -> bool {
        if values.len() != self.num_variables() {
            return false;
        }
        for (i, v) in values.iter().enumerate() {
            if *v < self.lower[i] - eps || *v > self.upper[i] + eps {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c
                .coeffs
                .iter()
                .map(|(var, coeff)| coeff * values[*var])
                .sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + eps,
                ConstraintOp::Ge => lhs >= c.rhs - eps,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= eps,
            }
        })
    }

    /// A conservative overestimate of the size-derived default simplex pivot
    /// budget this program receives when no explicit limit is set (the
    /// internal default depends on the standard-form dimensions, which are
    /// bounded by this expression). Escalated retries use it to raise the
    /// budget by a known factor without reverse-engineering the
    /// standardisation.
    pub fn estimated_iteration_budget(&self) -> usize {
        50_000 + 200 * (5 * self.num_variables() + 3 * self.num_constraints())
    }

    /// Solves the LP with the two-phase primal simplex method.
    pub fn solve(&self) -> LpSolution {
        simplex::solve(self, None)
    }

    /// Like [`LinearProgram::solve`], polling `cancel` between pivots; a
    /// tripped token yields [`LpStatus::Cancelled`].
    pub fn solve_cancellable(&self, cancel: Option<&crate::CancelToken>) -> LpSolution {
        simplex::solve(self, cancel)
    }

    /// Solves cold and, when the final basis supports it, additionally
    /// returns a [`crate::BasisSnapshot`] that [`LinearProgram::solve_from_basis`]
    /// can re-solve from after bound-only changes.
    pub fn solve_with_snapshot(&self) -> (LpSolution, Option<crate::BasisSnapshot>) {
        simplex::solve_with_snapshot(self, None)
    }

    /// Like [`LinearProgram::solve_with_snapshot`], polling `cancel` between
    /// pivots; a tripped token yields [`LpStatus::Cancelled`] (and no
    /// snapshot).
    pub fn solve_with_snapshot_cancellable(
        &self,
        cancel: Option<&crate::CancelToken>,
    ) -> (LpSolution, Option<crate::BasisSnapshot>) {
        simplex::solve_with_snapshot(self, cancel)
    }

    /// Warm re-solve from a previous solve's basis.
    ///
    /// Valid after **bound-shaped** edits only: [`LinearProgram::set_bounds`] /
    /// [`LinearProgram::tighten_bounds`] changes that preserve each bound's
    /// finiteness pattern, and [`LinearProgram::set_constraint_rhs`]. Those
    /// edits move only the standard-form right-hand side, so the stored basis
    /// stays dual feasible and a dual-simplex phase repairs primal
    /// feasibility instead of re-running both cold phases. The structural
    /// fingerprint is re-checked on every call; coefficient or objective
    /// changes, or numerical trouble, make the call return `None` — the
    /// snapshot must then be discarded and replaced via
    /// [`LinearProgram::solve_with_snapshot`]. On success the snapshot is
    /// updated in place to the new final basis, ready for the next re-solve.
    pub fn solve_from_basis(&self, snapshot: &mut crate::BasisSnapshot) -> Option<LpSolution> {
        simplex::solve_from_basis(self, snapshot, None)
    }

    /// Like [`LinearProgram::solve_from_basis`], polling `cancel` between
    /// pivots. A tripped token makes the warm solve *decline* (`None`) —
    /// callers fall back to the cold path, which then reports
    /// [`LpStatus::Cancelled`] immediately.
    pub fn solve_from_basis_cancellable(
        &self,
        snapshot: &mut crate::BasisSnapshot,
        cancel: Option<&crate::CancelToken>,
    ) -> Option<LpSolution> {
        simplex::solve_from_basis(self, snapshot, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_and_bounds() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 5.0);
        let y = lp.add_variable(-1.0, 1.0);
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.bounds(x), (0.0, 5.0));
        lp.tighten_bounds(y, -0.5, 2.0);
        assert_eq!(lp.bounds(y), (-0.5, 1.0));
    }

    #[test]
    fn set_bounds_overwrites_instead_of_intersecting() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        // Fix on descent…
        lp.set_bounds(x, 1.0, 1.0);
        assert_eq!(lp.bounds(x), (1.0, 1.0));
        // …and restore on backtrack: tighten_bounds could not widen again.
        lp.set_bounds(x, 0.0, 1.0);
        assert_eq!(lp.bounds(x), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn set_bounds_validates_ordering() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        lp.set_bounds(x, 2.0, 1.0);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 10.0);
        let y = lp.add_variable(0.0, 10.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 1.0);
        assert!(lp.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[0.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[4.0, 4.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0], 1e-9));
    }

    #[test]
    fn objective_bookkeeping() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        let y = lp.add_variable(0.0, 1.0);
        lp.set_objective(&[(x, 2.0), (y, -1.0)], true);
        assert!(lp.is_maximization());
        assert_eq!(lp.objective_value(&[1.0, 1.0]), 1.0);
        lp.set_objective(&[(y, 3.0)], false);
        assert_eq!(lp.objective(), &[0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_validates_variable_ids() {
        let mut lp = LinearProgram::new();
        let _ = lp.add_variable(0.0, 1.0);
        lp.add_constraint(&[(3, 1.0)], ConstraintOp::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn add_variable_validates_bounds() {
        let mut lp = LinearProgram::new();
        let _ = lp.add_variable(2.0, 1.0);
    }

    #[test]
    fn constraint_op_display() {
        assert_eq!(ConstraintOp::Le.to_string(), "<=");
        assert_eq!(ConstraintOp::Ge.to_string(), ">=");
        assert_eq!(ConstraintOp::Eq.to_string(), "=");
    }
}

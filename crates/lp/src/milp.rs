//! Branch-and-bound mixed-integer linear programming over binary variables.

use dpv_trace::{CounterId, TraceHandle};

use crate::{BasisSnapshot, CancelToken, LinearProgram, LpSolution, LpStatus, VarId, SOLVER_EPS};

/// Status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// An optimal (or, for feasibility problems, some) integer-feasible
    /// solution was found.
    Optimal,
    /// No integer-feasible solution exists.
    Infeasible,
    /// The relaxation is unbounded in the optimisation direction.
    Unbounded,
    /// The node limit was exhausted before the search completed. The
    /// incumbent (if any) is returned, but optimality/infeasibility is not
    /// proven. Verification callers must treat this as "unknown".
    NodeLimit,
    /// An LP relaxation ran out of its simplex pivot budget
    /// ([`LpStatus::IterationLimit`]) — numerical trouble in the model. The
    /// search stops conservatively; like [`MilpStatus::NodeLimit`] this is
    /// "unknown", never a verdict, so a degenerate model cannot abort the
    /// verification process.
    IterationLimit,
    /// A [`CancelToken`] tripped (explicit cancellation or an expired
    /// deadline) before the search completed. The incumbent (if any) is
    /// returned; like [`MilpStatus::NodeLimit`] this is "unknown", never a
    /// verdict.
    Cancelled,
}

/// Search statistics of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Number of LP relaxations solved.
    pub nodes_explored: usize,
    /// Number of nodes pruned (by incumbent bound, or — for enumeration
    /// backends — by infeasibility of the assignment's LP).
    pub nodes_pruned: usize,
    /// LP relaxations re-solved warm from a parent basis (dual simplex).
    pub warm_solves: usize,
    /// LP relaxations solved cold (two full simplex phases).
    pub cold_solves: usize,
    /// Warm starts that were *offered* a basis but declined it — the dual
    /// re-solve bailed (stale certificate, cancellation mid-pivot, …) and
    /// fell back to a cold solve. Every decline is also counted in
    /// [`SolveStats::cold_solves`]; the split makes warm-hit accounting
    /// exact: `warm_solves + warm_declined` is the number of solves that
    /// actually had a snapshot in hand.
    pub warm_declined: usize,
    /// Total simplex pivots across every LP solve of the run.
    pub simplex_iterations: usize,
}

impl SolveStats {
    /// Fraction of LP solves taken warm (zero when nothing was solved).
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_solves + self.cold_solves;
        if total == 0 {
            0.0
        } else {
            self.warm_solves as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for SolveStats {
    fn add_assign(&mut self, rhs: Self) {
        self.nodes_explored += rhs.nodes_explored;
        self.nodes_pruned += rhs.nodes_pruned;
        self.warm_solves += rhs.warm_solves;
        self.cold_solves += rhs.cold_solves;
        self.warm_declined += rhs.warm_declined;
        self.simplex_iterations += rhs.simplex_iterations;
    }
}

impl std::ops::Add for SolveStats {
    type Output = SolveStats;

    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Outcome status.
    pub status: MilpStatus,
    /// Best integer-feasible assignment found (empty if none).
    pub values: Vec<f64>,
    /// Objective of `values` (meaningful only when a solution exists).
    pub objective: f64,
    /// Search statistics.
    pub stats: SolveStats,
}

impl MilpSolution {
    /// Returns `true` when an integer-feasible assignment was found.
    pub fn has_solution(&self) -> bool {
        !self.values.is_empty()
    }
}

/// Picks the binary variable to branch on at a node whose relaxation is
/// optimal, or `None` when the relaxation is integral over the unfixed
/// binaries.
///
/// For **feasibility-only** problems (all-zero objective — the query safety
/// verification issues) the *most* fractional unfixed binary is chosen: its
/// relaxation value is closest to 1/2, so fixing it perturbs the relaxation
/// the most and drives infeasible subtrees to contradiction soonest, which
/// measurably shrinks refutation trees compared to PR-1's first-fractional
/// rule. For **optimisation** problems the first fractional binary is kept:
/// diving along the relaxation's suggestion finds strong incumbents early,
/// and the incumbent bound — not contradiction depth — prunes the tree.
/// Solves one node's LP relaxation against `scratch`, warm-starting from the
/// rolling basis in `warm` when enabled, and falls back to (and refreshes the
/// basis from) a cold solve otherwise. Shared by the serial and parallel
/// branch-and-bound engines so their statistics mean the same thing.
///
/// Any dual-feasible basis of the *same* matrix and objective warm-starts any
/// node — dual feasibility does not depend on the right-hand side — so the
/// rolling "most recent basis" works across backtracks and even across
/// work-stealing, not just parent→child edges.
pub(crate) fn solve_node_lp(
    scratch: &LinearProgram,
    warm: &mut Option<BasisSnapshot>,
    warm_enabled: bool,
    stats: &mut SolveStats,
    cancel: Option<&CancelToken>,
    trace: &TraceHandle,
) -> LpSolution {
    /// Warm re-solves per snapshot before a forced cold refactorisation.
    /// The identity block accumulates floating-point drift with every pivot;
    /// the Farkas certificate already guards against *wrong* verdicts, but a
    /// periodic fresh factorisation keeps the certificate's bail-out rate —
    /// and hence the warm hit rate — high on deep search trees.
    const REFACTOR_INTERVAL: usize = 256;
    if warm
        .as_ref()
        .is_some_and(|snapshot| snapshot.warm_uses() >= REFACTOR_INTERVAL)
    {
        *warm = None;
        trace.add(CounterId::Refactorisations, 1);
    }
    let mut warm_used = false;
    let solution = if warm_enabled {
        let snapshot_offered = warm.is_some();
        match warm
            .as_mut()
            .and_then(|snap| scratch.solve_from_basis_cancellable(snap, cancel))
        {
            Some(solution) => {
                stats.warm_solves += 1;
                warm_used = true;
                solution
            }
            None => {
                if snapshot_offered {
                    stats.warm_declined += 1;
                }
                let (solution, snapshot) = scratch.solve_with_snapshot_cancellable(cancel);
                stats.cold_solves += 1;
                *warm = snapshot;
                solution
            }
        }
    } else {
        let solution = scratch.solve_cancellable(cancel);
        stats.cold_solves += 1;
        solution
    };
    stats.simplex_iterations += solution.iterations;
    trace.lp_node(warm_used, solution.iterations as u64);
    solution
}

pub(crate) fn select_branching_variable(
    binaries: &[VarId],
    fixings: &[(VarId, f64)],
    values: &[f64],
    feasibility_only: bool,
) -> Option<VarId> {
    let mut unfixed = binaries
        .iter()
        .copied()
        .filter(|&b| fixings.iter().all(|(v, _)| *v != b));
    if feasibility_only {
        unfixed
            .map(|b| {
                let v = values[b];
                (b, (v - v.round()).abs())
            })
            .filter(|&(_, frac)| frac > 1e-6)
            // Fractionalities are differences of finite relaxation values, so
            // a NaN here would indicate solver trouble; an arbitrary-but-total
            // tie-break keeps branching deterministic instead of panicking.
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(b, _)| b)
    } else {
        unfixed.find(|&b| (values[b] - values[b].round()).abs() > 1e-6)
    }
}

/// A mixed-integer linear program: a [`LinearProgram`] in which a subset of
/// variables is required to take values in `{0, 1}`.
///
/// ```
/// use dpv_lp::{ConstraintOp, MilpProblem, MilpStatus};
///
/// // max x + y with x + y <= 1.5 and both binary → optimum 1.
/// let mut milp = MilpProblem::new();
/// let x = milp.add_binary();
/// let y = milp.add_binary();
/// milp.lp_mut().set_objective(&[(x, 1.0), (y, 1.0)], true);
/// milp.lp_mut().add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.5);
/// let solution = milp.solve();
/// assert_eq!(solution.status, MilpStatus::Optimal);
/// assert!((solution.objective - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MilpProblem {
    lp: LinearProgram,
    binaries: Vec<VarId>,
    node_limit: usize,
}

impl Default for MilpProblem {
    fn default() -> Self {
        Self::new()
    }
}

impl MilpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self {
            lp: LinearProgram::new(),
            binaries: Vec::new(),
            node_limit: 200_000,
        }
    }

    /// Wraps an existing LP; binary restrictions can then be added with
    /// [`MilpProblem::mark_binary`].
    pub fn from_lp(lp: LinearProgram) -> Self {
        Self {
            lp,
            binaries: Vec::new(),
            node_limit: 200_000,
        }
    }

    /// Adds a continuous variable with the given bounds.
    pub fn add_variable(&mut self, lower: f64, upper: f64) -> VarId {
        self.lp.add_variable(lower, upper)
    }

    /// Adds a binary variable (bounds `[0, 1]`, integrality enforced by the
    /// branch-and-bound).
    pub fn add_binary(&mut self) -> VarId {
        let var = self.lp.add_variable(0.0, 1.0);
        self.binaries.push(var);
        var
    }

    /// Marks an existing variable as binary and clamps its bounds to `[0, 1]`.
    pub fn mark_binary(&mut self, var: VarId) {
        self.lp.tighten_bounds(var, 0.0, 1.0);
        if !self.binaries.contains(&var) {
            self.binaries.push(var);
        }
    }

    /// The binary variables.
    pub fn binaries(&self) -> &[VarId] {
        &self.binaries
    }

    /// Read access to the underlying LP.
    pub fn lp(&self) -> &LinearProgram {
        &self.lp
    }

    /// Mutable access to the underlying LP (objective, constraints, bounds).
    pub fn lp_mut(&mut self) -> &mut LinearProgram {
        &mut self.lp
    }

    /// Limits the number of LP relaxations the branch-and-bound may solve.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit.max(1);
    }

    /// The current node limit. Alternative backends (parallel
    /// branch-and-bound, external engines) honour the same budget.
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Checks integer feasibility of an assignment.
    pub fn is_feasible(&self, values: &[f64], eps: f64) -> bool {
        self.lp.is_feasible(values, eps)
            && self
                .binaries
                .iter()
                .all(|&b| (values[b] - values[b].round()).abs() <= eps)
    }

    /// Solves the MILP by best-effort depth-first branch-and-bound.
    ///
    /// For pure feasibility problems (zero objective) the search stops at the
    /// first integer-feasible node.
    ///
    /// Node evaluation is allocation-free with respect to the model: instead
    /// of cloning the whole [`LinearProgram`] per node, a single scratch
    /// program is reused — binary bounds are tightened to the node's fixings
    /// on descent and restored from a saved snapshot on backtrack. Each
    /// node's relaxation is additionally **warm-started** from the most
    /// recent solved basis ([`LinearProgram::solve_from_basis`]): consecutive
    /// nodes differ only in binary bounds, so a dual-simplex repair replaces
    /// the two cold phases; [`SolveStats`] records the warm/cold split.
    pub fn solve(&self) -> MilpSolution {
        self.solve_impl(true, &mut None, None, &TraceHandle::disabled())
    }

    /// [`MilpProblem::solve`] polling a [`CancelToken`] in the node loop and
    /// inside every LP relaxation; a tripped token returns
    /// [`MilpStatus::Cancelled`] (with the incumbent found so far) promptly
    /// instead of searching on.
    pub fn solve_cancellable(&self, cancel: Option<&CancelToken>) -> MilpSolution {
        self.solve_impl(true, &mut None, cancel, &TraceHandle::disabled())
    }

    /// [`MilpProblem::solve`] with warm starting disabled: every node pays a
    /// cold two-phase solve. Kept as the PR-2 reference path for benchmarks
    /// and equivalence tests ([`crate::ColdBranchAndBoundBackend`]).
    pub fn solve_cold(&self) -> MilpSolution {
        self.solve_impl(false, &mut None, None, &TraceHandle::disabled())
    }

    /// [`MilpProblem::solve`] with an externally owned rolling basis.
    ///
    /// The caller's `seed` primes the first node's warm start (when `Some`)
    /// and on return holds the last solved basis, so consecutive MILPs that
    /// share a structure — e.g. instantiations of one `EncodingTemplate`
    /// across obligations or requests — can chain their dual-simplex repairs
    /// across *problem* boundaries, not just across nodes of one search tree.
    ///
    /// Soundness does not depend on the seed matching: a stale or foreign
    /// basis fails [`LinearProgram::solve_from_basis`]'s structure check or
    /// its primal/Farkas validation and the node silently falls back to a
    /// cold two-phase solve (counted in [`SolveStats::cold_solves`]).
    pub fn solve_seeded(&self, seed: &mut Option<BasisSnapshot>) -> MilpSolution {
        self.solve_impl(true, seed, None, &TraceHandle::disabled())
    }

    /// [`MilpProblem::solve_seeded`] with cooperative cancellation (see
    /// [`MilpProblem::solve_cancellable`]).
    pub fn solve_seeded_cancellable(
        &self,
        seed: &mut Option<BasisSnapshot>,
        cancel: Option<&CancelToken>,
    ) -> MilpSolution {
        self.solve_impl(true, seed, cancel, &TraceHandle::disabled())
    }

    /// [`MilpProblem::solve_seeded_cancellable`] recording per-node solver
    /// telemetry (branch-and-bound nodes, warm/cold LP split, simplex
    /// pivots, refactorisations, sampled progress events) through a
    /// [`TraceHandle`]. With a disabled handle — the default everywhere
    /// else — this is exactly `solve_seeded_cancellable`: tracing is
    /// observational and never alters the search.
    pub fn solve_traced(
        &self,
        seed: &mut Option<BasisSnapshot>,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> MilpSolution {
        self.solve_impl(true, seed, cancel, trace)
    }

    fn solve_impl(
        &self,
        warm_enabled: bool,
        warm: &mut Option<BasisSnapshot>,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> MilpSolution {
        let feasibility_only = self.lp.objective().iter().all(|&c| c == 0.0);
        let mut stats = SolveStats::default();
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        // Each stack entry is a list of (binary var, fixed value) decisions.
        let mut stack: Vec<Vec<(VarId, f64)>> = vec![Vec::new()];
        let mut hit_limit = false;
        // The single scratch LP all nodes are evaluated against, plus the
        // pristine binary bounds to restore between nodes, plus the rolling
        // warm-start basis refreshed after every solved relaxation.
        let mut scratch = self.lp.clone();
        let saved_bounds: Vec<(VarId, f64, f64)> = self
            .binaries
            .iter()
            .map(|&b| {
                let (lo, hi) = self.lp.bounds(b);
                (b, lo, hi)
            })
            .collect();

        while let Some(fixings) = stack.pop() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                let (values, objective) = match incumbent {
                    Some((values, objective)) => (values, objective),
                    None => (Vec::new(), 0.0),
                };
                return MilpSolution {
                    status: MilpStatus::Cancelled,
                    values,
                    objective,
                    stats,
                };
            }
            if stats.nodes_explored >= self.node_limit {
                hit_limit = true;
                break;
            }
            stats.nodes_explored += 1;

            for &(var, lo, hi) in &saved_bounds {
                scratch.set_bounds(var, lo, hi);
            }
            // A fixing that falls outside the variable's original bounds
            // (possible when a binary was pre-fixed, e.g. a stable ReLU
            // phase) makes the node infeasible without solving anything.
            let mut conflict = false;
            for &(var, value) in &fixings {
                let (lo, hi) = self.lp.bounds(var);
                if value < lo - SOLVER_EPS || value > hi + SOLVER_EPS {
                    conflict = true;
                    break;
                }
                scratch.set_bounds(var, value, value);
            }
            if conflict {
                continue;
            }
            let solution = solve_node_lp(&scratch, warm, warm_enabled, &mut stats, cancel, trace);
            match solution.status {
                LpStatus::Infeasible => continue,
                LpStatus::IterationLimit | LpStatus::Cancelled => {
                    // The relaxation could not be solved (budget exhausted or
                    // cancellation); neither pruning nor branching is
                    // justified. Stop conservatively.
                    let (values, objective) = match incumbent {
                        Some((values, objective)) => (values, objective),
                        None => (Vec::new(), 0.0),
                    };
                    return MilpSolution {
                        status: if solution.status == LpStatus::Cancelled {
                            MilpStatus::Cancelled
                        } else {
                            MilpStatus::IterationLimit
                        },
                        values,
                        objective,
                        stats,
                    };
                }
                LpStatus::Unbounded => {
                    // With every binary fixed the relaxation *is* an integer
                    // assignment, so an unbounded ray there proves the MILP
                    // itself unbounded (this also covers a binary-free
                    // problem at the root). With binaries still free we
                    // cannot prune, so branch further.
                    if fixings.len() == self.binaries.len() {
                        return MilpSolution {
                            status: MilpStatus::Unbounded,
                            values: Vec::new(),
                            objective: 0.0,
                            stats,
                        };
                    }
                }
                LpStatus::Optimal => {
                    // Bound pruning (only valid for optimisation problems).
                    if let Some((_, best)) = &incumbent {
                        let worse = if self.lp.is_maximization() {
                            solution.objective <= *best + SOLVER_EPS
                        } else {
                            solution.objective >= *best - SOLVER_EPS
                        };
                        if worse {
                            stats.nodes_pruned += 1;
                            continue;
                        }
                    }
                }
            }

            let fractional = if solution.status == LpStatus::Optimal {
                select_branching_variable(
                    &self.binaries,
                    &fixings,
                    &solution.values,
                    feasibility_only,
                )
            } else {
                // Unbounded relaxation: branch on any unfixed binary.
                self.binaries
                    .iter()
                    .copied()
                    .find(|&b| fixings.iter().all(|(v, _)| *v != b))
            };

            match fractional {
                None if solution.status == LpStatus::Optimal => {
                    // Integer feasible.
                    let objective = solution.objective;
                    let better = match &incumbent {
                        None => true,
                        Some((_, best)) => {
                            if self.lp.is_maximization() {
                                objective > *best
                            } else {
                                objective < *best
                            }
                        }
                    };
                    if better {
                        incumbent = Some((solution.values.clone(), objective));
                    }
                    if feasibility_only {
                        break;
                    }
                }
                None => {
                    // Unreachable: an unbounded relaxation with every binary
                    // fixed already returned `Unbounded` above, so there is
                    // always an unfixed binary to branch on here.
                }
                Some(branch_var) => {
                    // Depth-first: explore the branch suggested by the
                    // relaxation last so it is popped first.
                    let suggested = if solution.status == LpStatus::Optimal {
                        solution.values[branch_var].round().clamp(0.0, 1.0)
                    } else {
                        1.0
                    };
                    let other = 1.0 - suggested;
                    let mut first = fixings.clone();
                    first.push((branch_var, other));
                    let mut second = fixings;
                    second.push((branch_var, suggested));
                    stack.push(first);
                    stack.push(second);
                }
            }
        }

        match incumbent {
            Some((values, objective)) => MilpSolution {
                status: if hit_limit {
                    MilpStatus::NodeLimit
                } else {
                    MilpStatus::Optimal
                },
                values,
                objective,
                stats,
            },
            None => MilpSolution {
                status: if hit_limit {
                    MilpStatus::NodeLimit
                } else {
                    MilpStatus::Infeasible
                },
                values: Vec::new(),
                objective: 0.0,
                stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp;

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 6b + 4c  s.t.  a + b + c <= 2 (binaries) → 16.
        let mut milp = MilpProblem::new();
        let a = milp.add_binary();
        let b = milp.add_binary();
        let c = milp.add_binary();
        milp.lp_mut()
            .set_objective(&[(a, 10.0), (b, 6.0), (c, 4.0)], true);
        milp.lp_mut()
            .add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective - 16.0).abs() < 1e-6);
        assert!(milp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn integrality_changes_the_optimum() {
        // LP relaxation optimum is fractional; MILP must find the integer one.
        // max x + y  s.t.  2x + 2y <= 3, binaries → integer optimum 1.
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut().set_objective(&[(x, 1.0), (y, 1.0)], true);
        milp.lp_mut()
            .add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Le, 3.0);
        let relaxed = milp.lp().solve();
        assert!((relaxed.objective - 1.5).abs() < 1e-6);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp_detected() {
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        assert_eq!(milp.solve().status, MilpStatus::Infeasible);
    }

    #[test]
    fn feasibility_problem_stops_at_first_solution() {
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        let z = milp.add_variable(-1.0, 1.0);
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], ConstraintOp::Ge, 1.5);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!(sol.has_solution());
        assert!(milp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn mixed_integer_with_continuous_variables() {
        // max 3x + 2y + w: x,y binary, w in [0, 10], w <= 4x + 2y.
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        let w = milp.add_variable(0.0, 10.0);
        milp.lp_mut()
            .set_objective(&[(x, 3.0), (y, 2.0), (w, 1.0)], true);
        milp.lp_mut()
            .add_constraint(&[(w, 1.0), (x, -4.0), (y, -2.0)], ConstraintOp::Le, 0.0);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!(
            (sol.objective - 11.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn node_limit_reports_unknown() {
        let mut milp = MilpProblem::new();
        for _ in 0..6 {
            let _ = milp.add_binary();
        }
        // Encourage branching with a constraint that keeps the relaxation fractional.
        let vars: Vec<_> = milp.binaries().to_vec();
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        milp.lp_mut().add_constraint(&coeffs, ConstraintOp::Eq, 2.5);
        milp.set_node_limit(1);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::NodeLimit);
    }

    #[test]
    fn mark_binary_restricts_existing_variable() {
        let mut milp = MilpProblem::new();
        let x = milp.add_variable(0.0, 5.0);
        milp.mark_binary(x);
        assert_eq!(milp.lp().bounds(x), (0.0, 1.0));
        assert_eq!(milp.binaries(), &[x]);
        milp.mark_binary(x);
        assert_eq!(milp.binaries().len(), 1);
    }

    #[test]
    fn unbounded_milp_with_binaries_is_reported_unbounded() {
        // Regression: an unbounded MILP whose only integer structure is an
        // unrelated binary used to terminate with no incumbent and be
        // misreported as Infeasible. The continuous direction w → ∞ is
        // feasible for every assignment of the binary, so the MILP is
        // genuinely unbounded.
        let mut milp = MilpProblem::new();
        let b = milp.add_binary();
        let w = milp.add_variable(0.0, f64::INFINITY);
        milp.lp_mut().set_objective(&[(w, 1.0)], true);
        milp.lp_mut()
            .add_constraint(&[(w, 1.0), (b, -1.0)], ConstraintOp::Ge, 0.0);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::Unbounded);
        assert!(!sol.has_solution());
    }

    #[test]
    fn unbounded_lp_without_binaries_is_still_reported() {
        let mut milp = MilpProblem::new();
        let w = milp.add_variable(0.0, f64::INFINITY);
        milp.lp_mut().set_objective(&[(w, 1.0)], true);
        assert_eq!(milp.solve().status, MilpStatus::Unbounded);
    }

    #[test]
    fn solve_stats_aggregate_with_add_assign() {
        let mut total = SolveStats::default();
        total += SolveStats {
            nodes_explored: 3,
            nodes_pruned: 1,
            warm_solves: 2,
            cold_solves: 1,
            warm_declined: 1,
            simplex_iterations: 9,
        };
        total += SolveStats {
            nodes_explored: 5,
            nodes_pruned: 2,
            warm_solves: 4,
            cold_solves: 1,
            warm_declined: 0,
            simplex_iterations: 11,
        };
        assert_eq!(total.nodes_explored, 8);
        assert_eq!(total.nodes_pruned, 3);
        assert_eq!(total.warm_solves, 6);
        assert_eq!(total.cold_solves, 2);
        assert_eq!(total.warm_declined, 1);
        assert_eq!(total.simplex_iterations, 20);
        assert!((total.warm_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SolveStats::default().warm_hit_rate(), 0.0);
        let sum = total
            + SolveStats {
                nodes_explored: 2,
                ..SolveStats::default()
            };
        assert_eq!(sum.nodes_explored, 10);
    }

    #[test]
    fn warm_starts_carry_the_majority_of_node_solves() {
        // A fractional equality over six binaries forces a real tree; after
        // the cold root every node re-solve differs only in binary bounds,
        // so the rolling basis keeps almost every solve warm.
        let mut milp = MilpProblem::new();
        for _ in 0..6 {
            let _ = milp.add_binary();
        }
        let vars: Vec<_> = milp.binaries().to_vec();
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        milp.lp_mut().add_constraint(&coeffs, ConstraintOp::Eq, 2.5);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::Infeasible);
        assert!(sol.stats.warm_solves + sol.stats.cold_solves >= 3);
        assert!(
            sol.stats.warm_solves > sol.stats.cold_solves,
            "expected a warm majority: {:?}",
            sol.stats
        );
        assert!(sol.stats.simplex_iterations > 0);
    }

    #[test]
    fn seeded_solve_reuses_the_callers_basis_across_problems() {
        // Two problems sharing a structure (same binaries, same rows, only a
        // rhs apart): the basis handed out by the first solve must prime the
        // second one, replacing its cold root solve with a warm repair.
        let build = |rhs: f64| {
            let mut milp = MilpProblem::new();
            for _ in 0..4 {
                let _ = milp.add_binary();
            }
            let vars: Vec<_> = milp.binaries().to_vec();
            let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            milp.lp_mut().add_constraint(&coeffs, ConstraintOp::Ge, rhs);
            milp
        };
        let mut seed = None;
        let first = build(2.0).solve_seeded(&mut seed);
        assert_eq!(first.status, MilpStatus::Optimal);
        assert!(seed.is_some(), "seeded solve must hand the basis back");
        let second = build(3.0).solve_seeded(&mut seed);
        assert_eq!(second.status, MilpStatus::Optimal);
        assert_eq!(
            second.stats.cold_solves, 0,
            "structurally identical follow-up should be fully warm: {:?}",
            second.stats
        );
        // And the seeded result must agree with an unseeded solve.
        let reference = build(3.0).solve();
        assert_eq!(second.status, reference.status);
    }

    #[test]
    fn foreign_seed_degrades_to_cold_without_changing_the_verdict() {
        // A basis from a structurally different problem (different variable
        // count) must be rejected by the structure guard: the solve falls
        // back to cold and still returns the reference verdict.
        let mut donor = MilpProblem::new();
        for _ in 0..6 {
            let _ = donor.add_binary();
        }
        let vars: Vec<_> = donor.binaries().to_vec();
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        donor
            .lp_mut()
            .add_constraint(&coeffs, ConstraintOp::Ge, 1.0);
        let mut seed = None;
        let _ = donor.solve_seeded(&mut seed);
        assert!(seed.is_some());

        let mut other = MilpProblem::new();
        let x = other.add_binary();
        let y = other.add_binary();
        other
            .lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        let seeded = other.solve_seeded(&mut seed);
        let reference = other.solve();
        assert_eq!(seeded.status, reference.status);
        assert_eq!(seeded.status, MilpStatus::Infeasible);
        // The rejection is not silent: the offered-but-declined basis shows
        // up in `warm_declined`, and a fully owned solve declines nothing.
        assert!(
            seeded.stats.warm_declined >= 1,
            "foreign basis rejection must be recorded: {:?}",
            seeded.stats
        );
        assert_eq!(reference.stats.warm_declined, 0);
    }

    #[test]
    fn warm_and_cold_solves_agree_on_status_and_objective() {
        let mut milp = MilpProblem::new();
        let a = milp.add_binary();
        let b = milp.add_binary();
        let c = milp.add_binary();
        let w = milp.add_variable(0.0, 2.0);
        milp.lp_mut()
            .set_objective(&[(a, 3.0), (b, 5.0), (c, 4.0), (w, 1.0)], true);
        milp.lp_mut().add_constraint(
            &[(a, 2.0), (b, 3.0), (c, 1.0), (w, 1.0)],
            ConstraintOp::Le,
            4.0,
        );
        let warm = milp.solve();
        let cold = milp.solve_cold();
        assert_eq!(warm.status, cold.status);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert_eq!(cold.stats.warm_solves, 0);
        assert!(cold.stats.cold_solves >= 1);
    }

    #[test]
    fn iteration_limit_surfaces_as_milp_status() {
        // A starved pivot budget must degrade to IterationLimit ("unknown"),
        // not abort the process — the regression the old panic caused.
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut().set_objective(&[(x, 1.0), (y, 1.0)], true);
        milp.lp_mut()
            .add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Le, 3.0);
        milp.lp_mut().set_iteration_limit(Some(0));
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::IterationLimit);
    }

    #[test]
    fn node_limit_is_exposed() {
        let mut milp = MilpProblem::new();
        assert_eq!(milp.node_limit(), 200_000);
        milp.set_node_limit(7);
        assert_eq!(milp.node_limit(), 7);
    }

    #[test]
    fn solve_leaves_the_problem_bounds_untouched() {
        // The scratch-LP rework must not mutate the caller's model: bounds
        // observed after a solve are the bounds that went in.
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut().set_objective(&[(x, 1.0), (y, 1.0)], true);
        milp.lp_mut()
            .add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Le, 3.0);
        let before: Vec<_> = (0..2).map(|v| milp.lp().bounds(v)).collect();
        let _ = milp.solve();
        let after: Vec<_> = (0..2).map(|v| milp.lp().bounds(v)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn solve_stats_are_recorded() {
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut().set_objective(&[(x, 1.0), (y, 1.0)], true);
        milp.lp_mut()
            .add_constraint(&[(x, 2.0), (y, 2.0)], ConstraintOp::Le, 3.0);
        let sol = milp.solve();
        assert!(sol.stats.nodes_explored >= 1);
    }
}

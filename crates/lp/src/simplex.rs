//! Dense two-phase primal simplex.
//!
//! The implementation favours clarity and robustness over speed: the
//! verification instances produced by `dpv-core` stay small (hundreds of
//! variables), and Bland's rule guarantees termination without cycling.

use crate::{ConstraintOp, LinearProgram, LpSolution, LpStatus, SOLVER_EPS};

/// A sparse constraint row `coeffs (op) rhs` over standard-form variables.
type SparseRow = (Vec<(usize, f64)>, ConstraintOp, f64);

/// How each user-facing variable maps onto the non-negative standard-form
/// variables.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + z[idx]`
    Shifted { idx: usize, lower: f64 },
    /// `x = upper - z[idx]` (used when only the upper bound is finite)
    Mirrored { idx: usize, upper: f64 },
    /// `x = z[pos] - z[neg]` (free variable)
    Split { pos: usize, neg: usize },
}

struct StandardForm {
    /// Objective for the standard variables (minimisation).
    cost: Vec<f64>,
    /// Constraint rows `a·z (op) rhs` over the standard variables.
    rows: Vec<(Vec<f64>, ConstraintOp, f64)>,
    /// Mapping from user variables to standard variables.
    mapping: Vec<VarMap>,
    /// Number of standard variables.
    num_vars: usize,
    /// Constant offset added to the objective by the variable shifts.
    offset: f64,
}

/// Builds the standard form: all variables non-negative, objective minimised.
fn standardize(lp: &LinearProgram) -> StandardForm {
    let n = lp.num_variables();
    let sign = if lp.maximize { -1.0 } else { 1.0 };
    let mut mapping = Vec::with_capacity(n);
    let mut num_vars = 0usize;
    let mut extra_rows: Vec<SparseRow> = Vec::new();

    for i in 0..n {
        let (lo, hi) = (lp.lower[i], lp.upper[i]);
        if lo.is_finite() {
            let idx = num_vars;
            num_vars += 1;
            mapping.push(VarMap::Shifted { idx, lower: lo });
            if hi.is_finite() {
                extra_rows.push((vec![(idx, 1.0)], ConstraintOp::Le, hi - lo));
            }
        } else if hi.is_finite() {
            let idx = num_vars;
            num_vars += 1;
            mapping.push(VarMap::Mirrored { idx, upper: hi });
        } else {
            let pos = num_vars;
            let neg = num_vars + 1;
            num_vars += 2;
            mapping.push(VarMap::Split { pos, neg });
        }
    }

    // Objective in terms of standard variables.
    let mut cost = vec![0.0; num_vars];
    let mut offset = 0.0;
    for (i, map) in mapping.iter().enumerate() {
        let c = sign * lp.objective[i];
        if c == 0.0 {
            continue;
        }
        match *map {
            VarMap::Shifted { idx, lower } => {
                cost[idx] += c;
                offset += c * lower;
            }
            VarMap::Mirrored { idx, upper } => {
                cost[idx] -= c;
                offset += c * upper;
            }
            VarMap::Split { pos, neg } => {
                cost[pos] += c;
                cost[neg] -= c;
            }
        }
    }

    // Constraint rows.
    let mut rows = Vec::with_capacity(lp.constraints.len() + extra_rows.len());
    for constraint in &lp.constraints {
        let mut row = vec![0.0; num_vars];
        let mut rhs = constraint.rhs;
        for (var, coeff) in &constraint.coeffs {
            match mapping[*var] {
                VarMap::Shifted { idx, lower } => {
                    row[idx] += coeff;
                    rhs -= coeff * lower;
                }
                VarMap::Mirrored { idx, upper } => {
                    row[idx] -= coeff;
                    rhs -= coeff * upper;
                }
                VarMap::Split { pos, neg } => {
                    row[pos] += coeff;
                    row[neg] -= coeff;
                }
            }
        }
        rows.push((row, constraint.op, rhs));
    }
    for (sparse, op, rhs) in extra_rows {
        let mut row = vec![0.0; num_vars];
        for (idx, coeff) in sparse {
            row[idx] += coeff;
        }
        rows.push((row, op, rhs));
    }

    StandardForm {
        cost,
        rows,
        mapping,
        num_vars,
        offset,
    }
}

/// Dense simplex tableau with an explicit basis.
struct Tableau {
    /// `m x (n_total + 1)` rows; the last column is the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total number of columns excluding the rhs.
    n_total: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.rows[row][self.n_total]
    }

    /// Performs one pivot on (`row`, `col`).
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_value = self.rows[row][col];
        debug_assert!(
            pivot_value.abs() > SOLVER_EPS,
            "pivot on a (near-)zero element"
        );
        let inv = 1.0 / pivot_value;
        for value in &mut self.rows[row] {
            *value *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, other) in self.rows.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = other[col];
            if factor == 0.0 {
                continue;
            }
            for (o, p) in other.iter_mut().zip(pivot_row.iter()) {
                *o -= factor * p;
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex on the given cost vector (minimisation). Returns
    /// `None` when the problem is unbounded, otherwise the reduced-cost row
    /// value (the optimal objective, including any priced-out constant).
    fn optimize(&mut self, cost: &[f64]) -> Option<f64> {
        // Build the reduced cost row: c - c_B B^{-1} A, with the constant in
        // the rhs slot.
        let mut reduced = vec![0.0; self.n_total + 1];
        reduced[..cost.len()].copy_from_slice(cost);
        for (row_idx, &basic) in self.basis.iter().enumerate() {
            let cb = if basic < cost.len() { cost[basic] } else { 0.0 };
            if cb == 0.0 {
                continue;
            }
            let row = self.rows[row_idx].clone();
            for (r, value) in reduced.iter_mut().zip(row.iter()) {
                *r -= cb * value;
            }
        }

        let max_iterations = 50_000 + 200 * (self.n_total + self.rows.len());
        for _ in 0..max_iterations {
            // Bland's rule: entering column is the smallest index with a
            // negative reduced cost.
            let entering = (0..self.n_total).find(|&j| reduced[j] < -SOLVER_EPS);
            let Some(col) = entering else {
                // Optimal: the objective equals the negated constant slot.
                return Some(-reduced[self.n_total]);
            };
            // Ratio test, ties broken by the smallest basic variable index.
            let mut leaving: Option<(usize, f64)> = None;
            for row in 0..self.rows.len() {
                let a = self.rows[row][col];
                if a > SOLVER_EPS {
                    let ratio = self.rhs(row) / a;
                    let better = match leaving {
                        None => true,
                        Some((best_row, best_ratio)) => {
                            ratio < best_ratio - SOLVER_EPS
                                || (ratio < best_ratio + SOLVER_EPS
                                    && self.basis[row] < self.basis[best_row])
                        }
                    };
                    if better {
                        leaving = Some((row, ratio));
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return None; // unbounded
            };
            self.pivot(row, col);
            // Update the reduced cost row by the same elimination step.
            let factor = reduced[col];
            if factor != 0.0 {
                let pivot_row = self.rows[row].clone();
                for (r, p) in reduced.iter_mut().zip(pivot_row.iter()) {
                    *r -= factor * p;
                }
            }
        }
        panic!("simplex exceeded the iteration limit — numerical trouble in the model");
    }
}

/// Solves a [`LinearProgram`] with the two-phase primal simplex method.
pub(crate) fn solve(lp: &LinearProgram) -> LpSolution {
    if lp.num_variables() == 0 {
        // Vacuous program: feasible iff every constraint holds for the empty
        // assignment (only constant constraints are possible).
        let feasible = lp.constraints.iter().all(|c| match c.op {
            ConstraintOp::Le => 0.0 <= c.rhs + SOLVER_EPS,
            ConstraintOp::Ge => 0.0 >= c.rhs - SOLVER_EPS,
            ConstraintOp::Eq => c.rhs.abs() <= SOLVER_EPS,
        });
        return if feasible {
            LpSolution {
                status: LpStatus::Optimal,
                values: Vec::new(),
                objective: 0.0,
            }
        } else {
            LpSolution::non_optimal(LpStatus::Infeasible)
        };
    }

    let std_form = standardize(lp);
    let m = std_form.rows.len();
    let n = std_form.num_vars;

    // Count slack/surplus and artificial columns.
    let mut n_slack = 0usize;
    for (_, op, _) in &std_form.rows {
        if *op != ConstraintOp::Eq {
            n_slack += 1;
        }
    }
    let n_total = n + n_slack + m; // worst case: one artificial per row
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis = vec![usize::MAX; m];
    let mut artificial_cols: Vec<usize> = Vec::new();

    let mut slack_cursor = n;
    let artificial_base = n + n_slack;
    let mut artificial_cursor = artificial_base;

    for (row_idx, (coeffs, op, rhs)) in std_form.rows.iter().enumerate() {
        let mut row = vec![0.0; n_total + 1];
        row[..n].copy_from_slice(coeffs);
        let mut rhs = *rhs;
        let mut slack_col = None;
        match op {
            ConstraintOp::Le => {
                row[slack_cursor] = 1.0;
                slack_col = Some(slack_cursor);
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                row[slack_cursor] = -1.0;
                slack_col = Some(slack_cursor);
                slack_cursor += 1;
            }
            ConstraintOp::Eq => {}
        }
        // Make the rhs non-negative.
        if rhs < 0.0 {
            for value in row.iter_mut() {
                *value = -*value;
            }
            rhs = -rhs;
            // rhs slot was negated too; fix it below by assigning rhs fresh.
        }
        row[n_total] = rhs;

        // Choose the initial basic variable: a slack with +1 coefficient, or
        // a fresh artificial.
        let basic = match slack_col {
            Some(col) if row[col] > 0.5 => col,
            _ => {
                let col = artificial_cursor;
                artificial_cursor += 1;
                row[col] = 1.0;
                artificial_cols.push(col);
                col
            }
        };
        basis[row_idx] = basic;
        rows.push(row);
    }

    let mut tableau = Tableau {
        rows,
        basis,
        n_total,
    };

    // Phase 1: minimise the sum of artificial variables.
    if !artificial_cols.is_empty() {
        let mut phase1_cost = vec![0.0; n_total];
        for &col in &artificial_cols {
            phase1_cost[col] = 1.0;
        }
        let Some(optimum) = tableau.optimize(&phase1_cost) else {
            // Phase 1 is never unbounded (cost bounded below by zero).
            return LpSolution::non_optimal(LpStatus::Infeasible);
        };
        if optimum > 1e-6 {
            return LpSolution::non_optimal(LpStatus::Infeasible);
        }
        // Drive any artificial variable that is still basic (at level ~0) out
        // of the basis, or drop it with its (redundant) row.
        for row in 0..tableau.rows.len() {
            let basic = tableau.basis[row];
            if basic >= artificial_base {
                let pivot_col = (0..artificial_base).find(|&j| tableau.rows[row][j].abs() > 1e-7);
                if let Some(col) = pivot_col {
                    tableau.pivot(row, col);
                }
            }
        }
        // Freeze all artificial columns at zero so phase 2 cannot re-enter them.
        for row in tableau.rows.iter_mut() {
            for &col in &artificial_cols {
                row[col] = 0.0;
            }
        }
    }

    // Phase 2: minimise the real objective.
    let mut phase2_cost = vec![0.0; n_total];
    phase2_cost[..n].copy_from_slice(&std_form.cost);
    let Some(optimum) = tableau.optimize(&phase2_cost) else {
        return LpSolution::non_optimal(LpStatus::Unbounded);
    };

    // Extract the standard-variable values.
    let mut z = vec![0.0; n_total];
    for (row, &basic) in tableau.basis.iter().enumerate() {
        if basic < n_total {
            z[basic] = tableau.rhs(row);
        }
    }

    // Map back to the user variables.
    let mut values = vec![0.0; lp.num_variables()];
    for (i, map) in std_form.mapping.iter().enumerate() {
        values[i] = match *map {
            VarMap::Shifted { idx, lower } => lower + z[idx],
            VarMap::Mirrored { idx, upper } => upper - z[idx],
            VarMap::Split { pos, neg } => z[pos] - z[neg],
        };
    }

    // The simplex minimised `sign * objective` plus the shift offset.
    let std_objective = optimum + std_form.offset;
    let objective = if lp.maximize {
        -std_objective
    } else {
        std_objective
    };

    LpSolution {
        status: LpStatus::Optimal,
        values,
        objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearProgram;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximization_with_two_constraints() {
        // max x + y, x + 2y <= 4, 3x + y <= 6, x,y >= 0 → optimum 2.8 at (1.6, 1.2).
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(&[(x, 3.0), (y, 1.0)], ConstraintOp::Le, 6.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.8);
        assert_close(sol.values[0], 1.6);
        assert_close(sol.values[1], 1.2);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y, x + y >= 4, x >= 1, y >= 0 → optimum at (4, 0) = 8.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 2.0), (y, 3.0)], false);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 8.0);
        assert_close(sol.values[0], 4.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 1.0)], true);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 3, x - y = 1 → x = 2, y = 1.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], false);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], 2.0);
        assert_close(sol.values[1], 1.0);
    }

    #[test]
    fn free_variables_are_supported() {
        // min x, with x free and x >= -5 as a row constraint → optimum -5.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(f64::NEG_INFINITY, f64::INFINITY);
        lp.set_objective(&[(x, 1.0)], false);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, -5.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -5.0);
        assert_close(sol.values[0], -5.0);
    }

    #[test]
    fn negative_bounds_are_handled_by_shifting() {
        // max x + y with x in [-3, -1], y in [-2, 2], x + y <= -2.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(-3.0, -1.0);
        let y = lp.add_variable(-2.0, 2.0);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, -2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -2.0);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn mirrored_variables_only_upper_bound() {
        // min x with x <= 4 (no lower bound) and x >= 1 via a row.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(f64::NEG_INFINITY, 4.0);
        lp.set_objective(&[(x, 1.0)], true);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn upper_bounds_limit_the_optimum() {
        // max x + 2y with x, y in [0, 1] and x + y <= 1.5.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        let y = lp.add_variable(0.0, 1.0);
        lp.set_objective(&[(x, 1.0), (y, 2.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.5);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.5);
        assert_close(sol.values[1], 1.0);
        assert_close(sol.values[0], 0.5);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; Bland's rule must terminate.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        let z = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 0.75), (y, -150.0), (z, 0.02)], true);
        lp.add_constraint(&[(x, 0.25), (y, -60.0), (z, -0.04)], ConstraintOp::Le, 0.0);
        lp.add_constraint(&[(x, 0.5), (y, -90.0), (z, -0.02)], ConstraintOp::Le, 0.0);
        lp.add_constraint(&[(z, 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn feasibility_only_problem_returns_a_point() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(-1.0, 1.0);
        let y = lp.add_variable(-1.0, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 0.5);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 0.2);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn empty_program_is_trivially_feasible() {
        let lp = LinearProgram::new();
        assert_eq!(lp.solve().status, LpStatus::Optimal);
    }
}

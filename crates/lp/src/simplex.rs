//! Dense two-phase primal simplex with warm-start support.
//!
//! The implementation favours clarity and robustness over speed: the
//! verification instances produced by `dpv-core` stay small (hundreds of
//! variables), and Bland's rule guarantees termination without cycling.
//!
//! # Warm starts
//!
//! Branch-and-bound and the refinement loop re-solve the *same* constraint
//! matrix under different variable bounds thousands of times. A cold solve
//! pays for two full simplex phases every time; the warm path
//! ([`LinearProgram::solve_from_basis`]) instead reuses the final tableau of
//! a previous solve (a [`BasisSnapshot`]):
//!
//! * every tableau carries a full identity block (one column per row, doubling
//!   as the phase-1 artificial variables), so the accumulated row operations
//!   `G = B⁻¹·S` are always available explicitly;
//! * a bound-only change alters *only* the standard-form right-hand side `b`
//!   (variable shifts move constraint offsets; bound rows get a new width),
//!   never the coefficient matrix or the standard-form cost vector — so the
//!   old basis stays **dual feasible** and the new tableau rhs is just
//!   `G·S·b'`, an O(m²) refresh instead of a rebuild-and-re-factor;
//! * a **dual simplex** phase then repairs primal feasibility (negative rhs
//!   entries), after which a short primal clean-up polishes any residual
//!   reduced-cost noise.
//!
//! The snapshot encodes a structural fingerprint (variable-bound finiteness
//! pattern, constraint counts, objective); whenever it does not match the
//! program being solved — or the numerics look off — the warm path declines
//! and the caller falls back to a cold solve, so warm starting is purely an
//! optimisation and never changes results.

use crate::{CancelToken, ConstraintOp, LinearProgram, LpSolution, LpStatus, SOLVER_EPS};

/// A sparse constraint row `coeffs (op) rhs` over standard-form variables.
type SparseRow = (Vec<(usize, f64)>, ConstraintOp, f64);

/// How each user-facing variable maps onto the non-negative standard-form
/// variables.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + z[idx]`
    Shifted { idx: usize, lower: f64 },
    /// `x = upper - z[idx]` (used when only the upper bound is finite)
    Mirrored { idx: usize, upper: f64 },
    /// `x = z[pos] - z[neg]` (free variable)
    Split { pos: usize, neg: usize },
}

/// The structural shape of a variable's mapping — the part of [`VarMap`] that
/// must be *identical* between two programs for a basis to be transferable.
/// Bound **values** may differ (that is the point of warm starting); bound
/// **finiteness** may not, because it decides the standard-form layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    /// Finite lower and upper bound (shifted variable plus a bound row).
    Boxed,
    /// Finite lower bound only (shifted variable, no bound row).
    LowerOnly,
    /// Finite upper bound only (mirrored variable).
    UpperOnly,
    /// No finite bounds (split into a positive/negative pair).
    Free,
}

fn var_kind(lo: f64, hi: f64) -> VarKind {
    match (lo.is_finite(), hi.is_finite()) {
        (true, true) => VarKind::Boxed,
        (true, false) => VarKind::LowerOnly,
        (false, true) => VarKind::UpperOnly,
        (false, false) => VarKind::Free,
    }
}

struct StandardForm {
    /// Objective for the standard variables (minimisation).
    cost: Vec<f64>,
    /// Constraint rows `a·z (op) rhs` over the standard variables.
    rows: Vec<(Vec<f64>, ConstraintOp, f64)>,
    /// Mapping from user variables to standard variables.
    mapping: Vec<VarMap>,
    /// Number of standard variables.
    num_vars: usize,
    /// Constant offset added to the objective by the variable shifts.
    offset: f64,
}

/// Builds the variable mapping alone (shared by the cold standardisation and
/// the warm-path compatibility check / rhs refresh).
fn build_mapping(lp: &LinearProgram) -> (Vec<VarMap>, usize) {
    let n = lp.num_variables();
    let mut mapping = Vec::with_capacity(n);
    let mut num_vars = 0usize;
    for i in 0..n {
        let (lo, hi) = (lp.lower[i], lp.upper[i]);
        if lo.is_finite() {
            mapping.push(VarMap::Shifted {
                idx: num_vars,
                lower: lo,
            });
            num_vars += 1;
        } else if hi.is_finite() {
            mapping.push(VarMap::Mirrored {
                idx: num_vars,
                upper: hi,
            });
            num_vars += 1;
        } else {
            mapping.push(VarMap::Split {
                pos: num_vars,
                neg: num_vars + 1,
            });
            num_vars += 2;
        }
    }
    (mapping, num_vars)
}

/// Standard-form cost vector (minimisation) and the constant objective offset
/// introduced by the variable shifts.
fn standard_cost(lp: &LinearProgram, mapping: &[VarMap], num_vars: usize) -> (Vec<f64>, f64) {
    let sign = if lp.maximize { -1.0 } else { 1.0 };
    let mut cost = vec![0.0; num_vars];
    let mut offset = 0.0;
    for (i, map) in mapping.iter().enumerate() {
        let c = sign * lp.objective[i];
        if c == 0.0 {
            continue;
        }
        match *map {
            VarMap::Shifted { idx, lower } => {
                cost[idx] += c;
                offset += c * lower;
            }
            VarMap::Mirrored { idx, upper } => {
                cost[idx] -= c;
                offset += c * upper;
            }
            VarMap::Split { pos, neg } => {
                cost[pos] += c;
                cost[neg] -= c;
            }
        }
    }
    (cost, offset)
}

/// Standard-form right-hand sides in tableau row order (constraint rows
/// first, then the bound rows of doubly-bounded variables in variable order),
/// computed sparsely without materialising any coefficient rows. This is the
/// only part of the standard form a bound-only change can alter.
fn standard_rhs(lp: &LinearProgram, mapping: &[VarMap]) -> Vec<f64> {
    let mut rhs = Vec::with_capacity(lp.constraints.len());
    for constraint in &lp.constraints {
        let mut b = constraint.rhs;
        for (var, coeff) in &constraint.coeffs {
            match mapping[*var] {
                VarMap::Shifted { lower, .. } => b -= coeff * lower,
                VarMap::Mirrored { upper, .. } => b -= coeff * upper,
                VarMap::Split { .. } => {}
            }
        }
        rhs.push(b);
    }
    for (i, map) in mapping.iter().enumerate() {
        if let VarMap::Shifted { .. } = map {
            if lp.upper[i].is_finite() {
                rhs.push(lp.upper[i] - lp.lower[i]);
            }
        }
    }
    rhs
}

/// Builds the standard form: all variables non-negative, objective minimised.
fn standardize(lp: &LinearProgram) -> StandardForm {
    let (mapping, num_vars) = build_mapping(lp);
    let mut extra_rows: Vec<SparseRow> = Vec::new();
    for (i, map) in mapping.iter().enumerate() {
        if let VarMap::Shifted { idx, lower } = map {
            if lp.upper[i].is_finite() {
                extra_rows.push((vec![(*idx, 1.0)], ConstraintOp::Le, lp.upper[i] - lower));
            }
        }
    }

    let (cost, offset) = standard_cost(lp, &mapping, num_vars);

    // Constraint rows.
    let mut rows = Vec::with_capacity(lp.constraints.len() + extra_rows.len());
    for constraint in &lp.constraints {
        let mut row = vec![0.0; num_vars];
        let mut rhs = constraint.rhs;
        for (var, coeff) in &constraint.coeffs {
            match mapping[*var] {
                VarMap::Shifted { idx, lower } => {
                    row[idx] += coeff;
                    rhs -= coeff * lower;
                }
                VarMap::Mirrored { idx, upper } => {
                    row[idx] -= coeff;
                    rhs -= coeff * upper;
                }
                VarMap::Split { pos, neg } => {
                    row[pos] += coeff;
                    row[neg] -= coeff;
                }
            }
        }
        rows.push((row, constraint.op, rhs));
    }
    for (sparse, op, rhs) in extra_rows {
        let mut row = vec![0.0; num_vars];
        for (idx, coeff) in sparse {
            row[idx] += coeff;
        }
        rows.push((row, op, rhs));
    }

    StandardForm {
        cost,
        rows,
        mapping,
        num_vars,
        offset,
    }
}

/// Fingerprint of a program's standard-form *structure*: everything the warm
/// path must see unchanged for a stored basis to remain meaningful. Bound
/// values and constraint right-hand sides are deliberately excluded — those
/// are exactly the edits warm starting exists for.
#[derive(Debug, Clone, PartialEq)]
struct StructureFingerprint {
    var_kinds: Vec<VarKind>,
    num_constraints: usize,
    /// Total number of constraint coefficients, a cheap proxy for "the
    /// coefficient matrix is unchanged" (full equality is the caller's
    /// documented precondition).
    nnz: usize,
    /// Standard-form cost vector — dual feasibility of the stored basis is
    /// only guaranteed while the objective is untouched.
    cost: Vec<f64>,
}

fn fingerprint(lp: &LinearProgram, cost: &[f64]) -> StructureFingerprint {
    StructureFingerprint {
        var_kinds: (0..lp.num_variables())
            .map(|i| var_kind(lp.lower[i], lp.upper[i]))
            .collect(),
        num_constraints: lp.constraints.len(),
        nnz: lp.constraints.iter().map(|c| c.coeffs.len()).sum(),
        cost: cost.to_vec(),
    }
}

/// The final tableau of a solved [`LinearProgram`], reusable as a warm start
/// for re-solves after bound-only changes (see
/// [`LinearProgram::solve_from_basis`]).
///
/// A snapshot is only handed out when the solve ended in a state whose basis
/// is dual feasible and artificial-free at nonzero levels — i.e. a state the
/// dual simplex can safely continue from.
#[derive(Debug, Clone)]
pub struct BasisSnapshot {
    /// `m x (n_total + 1)` tableau rows; the identity block at columns
    /// `artificial_base..artificial_base + m` holds the accumulated row
    /// operations, the last column the rhs.
    rows: Vec<Vec<f64>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Sign applied to each row when the tableau was first built (rows with
    /// negative rhs are negated so the initial basis is non-negative).
    signs: Vec<f64>,
    /// Number of structural standard-form variables.
    n: usize,
    /// First column of the identity/artificial block.
    artificial_base: usize,
    /// Total number of columns excluding the rhs.
    n_total: usize,
    /// Structural fingerprint the target program must match.
    structure: StructureFingerprint,
    /// Number of warm re-solves taken from this snapshot (statistics only).
    warm_uses: usize,
}

impl BasisSnapshot {
    /// How many warm re-solves this snapshot has served so far.
    pub fn warm_uses(&self) -> usize {
        self.warm_uses
    }
}

/// Outcome of one simplex phase.
enum PhaseOutcome {
    /// Optimal for the phase cost; carries the objective value.
    Optimal(f64),
    /// The phase cost is unbounded below.
    Unbounded,
    /// The iteration budget ran out (numerical trouble / adversarial model).
    IterationLimit,
    /// The caller's [`CancelToken`] tripped mid-phase.
    Cancelled,
}

/// Outcome of a dual-simplex run.
enum DualOutcome {
    /// Primal feasibility restored (the subsequent primal clean-up pass
    /// recomputes the objective, so none is carried here).
    Feasible,
    /// The dual is unbounded along `row`'s direction — the primal is
    /// infeasible *if* the row still certifies it against the un-drifted
    /// problem data (see `certify_infeasible_row`).
    Infeasible { row: usize },
    /// The iteration budget ran out.
    IterationLimit,
    /// The caller's [`CancelToken`] tripped mid-phase.
    Cancelled,
}

/// Dense simplex tableau with an explicit basis.
struct Tableau {
    /// `m x (n_total + 1)` rows; the last column is the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total number of columns excluding the rhs.
    n_total: usize,
    /// First column of the identity/artificial block; columns at or beyond
    /// this index may never (re-)enter the basis outside phase 1.
    artificial_base: usize,
    /// Pivots performed so far (reported as `LpSolution::iterations`).
    iterations: usize,
    /// Remaining pivot budget.
    budget: usize,
    /// Cooperative cancellation handle, polled every [`CANCEL_POLL_MASK`]+1
    /// pivots.
    cancel: Option<CancelToken>,
}

/// Poll the cancel token when `iterations & CANCEL_POLL_MASK == 0` — every
/// 64 pivots, cheap enough to disappear in the pivot cost while keeping the
/// reaction latency to an expired deadline well below a millisecond.
const CANCEL_POLL_MASK: usize = 63;

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.rows[row][self.n_total]
    }

    /// True when the caller's token tripped; only polled at the
    /// [`CANCEL_POLL_MASK`] stride so the atomic/clock reads stay off the
    /// per-pivot hot path.
    fn cancelled(&self) -> bool {
        self.iterations & CANCEL_POLL_MASK == 0
            && self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Performs one pivot on (`row`, `col`).
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_value = self.rows[row][col];
        debug_assert!(
            pivot_value.abs() > SOLVER_EPS,
            "pivot on a (near-)zero element"
        );
        let inv = 1.0 / pivot_value;
        for value in &mut self.rows[row] {
            *value *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, other) in self.rows.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = other[col];
            if factor == 0.0 {
                continue;
            }
            for (o, p) in other.iter_mut().zip(pivot_row.iter()) {
                *o -= factor * p;
            }
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Reduced-cost row `c - c_B B⁻¹ A` for the given phase cost, with the
    /// priced-out constant in the rhs slot.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let mut reduced = vec![0.0; self.n_total + 1];
        reduced[..cost.len()].copy_from_slice(cost);
        for (row_idx, &basic) in self.basis.iter().enumerate() {
            let cb = if basic < cost.len() { cost[basic] } else { 0.0 };
            if cb == 0.0 {
                continue;
            }
            for (r, value) in reduced.iter_mut().zip(self.rows[row_idx].iter()) {
                *r -= cb * value;
            }
        }
        reduced
    }

    /// Runs the primal simplex on the given cost vector (minimisation).
    /// Entering columns are restricted to indices below `artificial_base`.
    fn optimize(&mut self, cost: &[f64]) -> PhaseOutcome {
        let mut reduced = self.reduced_costs(cost);
        loop {
            if self.cancelled() {
                return PhaseOutcome::Cancelled;
            }
            // Bland's rule: entering column is the smallest index with a
            // negative reduced cost.
            let entering = (0..self.artificial_base).find(|&j| reduced[j] < -SOLVER_EPS);
            let Some(col) = entering else {
                // Optimal: the objective equals the negated constant slot.
                return PhaseOutcome::Optimal(-reduced[self.n_total]);
            };
            // Ratio test, ties broken by the smallest basic variable index.
            let mut leaving: Option<(usize, f64)> = None;
            for row in 0..self.rows.len() {
                let a = self.rows[row][col];
                if a > SOLVER_EPS {
                    let ratio = self.rhs(row) / a;
                    let better = match leaving {
                        None => true,
                        Some((best_row, best_ratio)) => {
                            ratio < best_ratio - SOLVER_EPS
                                || (ratio < best_ratio + SOLVER_EPS
                                    && self.basis[row] < self.basis[best_row])
                        }
                    };
                    if better {
                        leaving = Some((row, ratio));
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return PhaseOutcome::Unbounded;
            };
            if self.budget == 0 {
                return PhaseOutcome::IterationLimit;
            }
            self.budget -= 1;
            self.pivot(row, col);
            // Update the reduced cost row by the same elimination step.
            let factor = reduced[col];
            if factor != 0.0 {
                let pivot_row = self.rows[row].clone();
                for (r, p) in reduced.iter_mut().zip(pivot_row.iter()) {
                    *r -= factor * p;
                }
            }
        }
    }

    /// Runs the **dual** simplex: starting from a dual-feasible basis with
    /// (possibly) negative rhs entries, pivots until the basis is primal
    /// feasible. Returns `Optimal` when primal feasibility is restored,
    /// `Unbounded` when a row proves the program **infeasible** (the dual is
    /// unbounded), `IterationLimit` when the budget runs out.
    ///
    /// Pivot rules: the verification LPs are heavily degenerate (zero
    /// objectives make every dual ratio tie at zero), where pure Bland
    /// index rules stall for hundreds of pivots. The fast phase therefore
    /// picks the **most-violated row** and breaks ratio ties by the
    /// **largest pivot magnitude** (numerically stable, empirically a few
    /// pivots per bound change); if that phase ever stalls past `2·m + 32`
    /// pivots, the loop switches to Bland's dual rule, whose termination
    /// guarantee then applies. The overall budget still backstops
    /// everything — running out means the caller re-solves cold.
    fn dual_optimize(&mut self, cost: &[f64]) -> DualOutcome {
        let mut reduced = self.reduced_costs(cost);
        let heuristic_budget = 2 * self.rows.len() + 32;
        let mut pivots = 0usize;
        loop {
            if self.cancelled() {
                return DualOutcome::Cancelled;
            }
            let blands = pivots >= heuristic_budget;
            // Leaving row: most-negative rhs (fast phase), or the smallest
            // basic index among violated rows (Bland phase).
            let mut leaving: Option<(usize, f64)> = None;
            for row in 0..self.rows.len() {
                let rhs = self.rhs(row);
                if rhs < -1e-9 {
                    let better = match leaving {
                        None => true,
                        Some((best_row, best_rhs)) => {
                            if blands {
                                self.basis[row] < self.basis[best_row]
                            } else {
                                rhs < best_rhs
                            }
                        }
                    };
                    if better {
                        leaving = Some((row, rhs));
                    }
                }
            }
            let Some((row, _)) = leaving else {
                return DualOutcome::Feasible;
            };
            // Entering column: minimise reduced[j] / -a[row][j] over eligible
            // columns with a negative pivot element; ties by the largest
            // |pivot| (fast phase) or the smallest index (Bland phase).
            let mut entering: Option<(usize, f64, f64)> = None;
            for (j, (&a, &red)) in self.rows[row]
                .iter()
                .zip(reduced.iter())
                .take(self.artificial_base)
                .enumerate()
            {
                if a < -SOLVER_EPS {
                    let ratio = red.max(0.0) / -a;
                    let better = match entering {
                        None => true,
                        Some((_, best_ratio, best_mag)) => {
                            if ratio < best_ratio - 1e-9 {
                                true
                            } else if ratio > best_ratio + 1e-9 {
                                false
                            } else {
                                // Tie on the ratio.
                                !blands && a.abs() > best_mag
                            }
                        }
                    };
                    if better {
                        entering = Some((j, ratio, a.abs()));
                    }
                }
            }
            let Some((col, _, _)) = entering else {
                // A row demands a negative value from non-negative variables
                // with non-negative coefficients: primal infeasible (subject
                // to the caller's drift-free certificate check).
                return DualOutcome::Infeasible { row };
            };
            if self.budget == 0 {
                return DualOutcome::IterationLimit;
            }
            self.budget -= 1;
            pivots += 1;
            self.pivot(row, col);
            let factor = reduced[col];
            if factor != 0.0 {
                let pivot_row = self.rows[row].clone();
                for (r, p) in reduced.iter_mut().zip(pivot_row.iter()) {
                    *r -= factor * p;
                }
            }
        }
    }
}

/// Verifies a dual-simplex infeasibility declaration against the
/// **un-drifted** problem data. The triggering tableau row is a linear
/// combination `w` of the original standard-form equations (recovered from
/// the identity block and the build-time row signs); for any feasible
/// `z ≥ 0` it implies `(w·A)·z = w·b` exactly, because `A` and `b` are
/// recomputed from the live constraints rather than read from the (possibly
/// drifted) tableau. If every recomputed column coefficient is non-negative
/// while `w·b` is negative, no non-negative `z` can satisfy the system —
/// a Farkas certificate that holds no matter how degraded the tableau's
/// numerics are. A failed check means the declaration was an artefact of
/// drift and the caller must fall back to a cold solve.
fn certify_infeasible_row(
    lp: &LinearProgram,
    mapping: &[VarMap],
    tableau_row: &[f64],
    signs: &[f64],
    n: usize,
    artificial_base: usize,
    b: &[f64],
) -> bool {
    let m = signs.len();
    // w = (identity-block entries of the row) · (build-time signs).
    let mut w = Vec::with_capacity(m);
    for (k, sign) in signs.iter().enumerate() {
        w.push(tableau_row[artificial_base + k] * sign);
    }

    // v = w · A, recomputed sparsely from the live constraints.
    let mut v = vec![0.0; artificial_base];
    let mut slack_cursor = n;
    for (row, constraint) in lp.constraints.iter().enumerate() {
        let weight = w[row];
        if weight != 0.0 {
            for (var, coeff) in &constraint.coeffs {
                match mapping[*var] {
                    VarMap::Shifted { idx, .. } => v[idx] += weight * coeff,
                    VarMap::Mirrored { idx, .. } => v[idx] -= weight * coeff,
                    VarMap::Split { pos, neg } => {
                        v[pos] += weight * coeff;
                        v[neg] -= weight * coeff;
                    }
                }
            }
        }
        match constraint.op {
            ConstraintOp::Le => {
                v[slack_cursor] += weight;
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                v[slack_cursor] -= weight;
                slack_cursor += 1;
            }
            ConstraintOp::Eq => {}
        }
    }
    // Bound rows (`z_idx ≤ hi − lo`, slack +1), in variable order after the
    // constraint rows.
    let mut bound_row = lp.constraints.len();
    for (i, map) in mapping.iter().enumerate() {
        if let VarMap::Shifted { idx, .. } = map {
            if lp.upper[i].is_finite() {
                let weight = w[bound_row];
                if weight != 0.0 {
                    v[*idx] += weight;
                    v[slack_cursor] += weight;
                }
                slack_cursor += 1;
                bound_row += 1;
            }
        }
    }

    let scale = 1.0 + w.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
    let tol = 1e-8 * scale;
    let rhs_dot: f64 = w.iter().zip(b.iter()).map(|(wk, bk)| wk * bk).sum();
    rhs_dot < -tol && v.iter().all(|&coeff| coeff >= -tol)
}

/// Maps standard-variable values back to the user variables.
fn extract_values(lp: &LinearProgram, mapping: &[VarMap], tableau: &Tableau) -> Vec<f64> {
    let mut z = vec![0.0; tableau.n_total];
    for (row, &basic) in tableau.basis.iter().enumerate() {
        if basic < tableau.n_total {
            z[basic] = tableau.rhs(row);
        }
    }
    let mut values = vec![0.0; lp.num_variables()];
    for (i, map) in mapping.iter().enumerate() {
        values[i] = match *map {
            VarMap::Shifted { idx, lower } => lower + z[idx],
            VarMap::Mirrored { idx, upper } => upper - z[idx],
            VarMap::Split { pos, neg } => z[pos] - z[neg],
        };
    }
    values
}

/// Translates the standard-form optimum back into the user objective.
fn user_objective(lp: &LinearProgram, optimum: f64, offset: f64) -> f64 {
    let std_objective = optimum + offset;
    if lp.maximize {
        -std_objective
    } else {
        std_objective
    }
}

fn iteration_budget(lp: &LinearProgram, n_total: usize, rows: usize) -> usize {
    lp.max_iterations.unwrap_or(50_000 + 200 * (n_total + rows))
}

/// Solves a [`LinearProgram`] with the two-phase primal simplex method and,
/// when the final basis supports it, returns a [`BasisSnapshot`] for warm
/// re-solves.
pub(crate) fn solve_with_snapshot(
    lp: &LinearProgram,
    cancel: Option<&CancelToken>,
) -> (LpSolution, Option<BasisSnapshot>) {
    solve_cold(lp, true, cancel)
}

/// Two-phase cold solve. With `want_snapshot` false the snapshot (and its
/// fingerprint allocations) is skipped entirely — the cheap path for
/// callers that immediately discard it, like the exhaustive oracle and the
/// warm-start-free reference engine.
fn solve_cold(
    lp: &LinearProgram,
    want_snapshot: bool,
    cancel: Option<&CancelToken>,
) -> (LpSolution, Option<BasisSnapshot>) {
    if lp.num_variables() == 0 {
        // Vacuous program: feasible iff every constraint holds for the empty
        // assignment (only constant constraints are possible).
        let feasible = lp.constraints.iter().all(|c| match c.op {
            ConstraintOp::Le => 0.0 <= c.rhs + SOLVER_EPS,
            ConstraintOp::Ge => 0.0 >= c.rhs - SOLVER_EPS,
            ConstraintOp::Eq => c.rhs.abs() <= SOLVER_EPS,
        });
        let solution = if feasible {
            LpSolution {
                status: LpStatus::Optimal,
                values: Vec::new(),
                objective: 0.0,
                iterations: 0,
                warm_started: false,
            }
        } else {
            LpSolution::non_optimal(LpStatus::Infeasible)
        };
        return (solution, None);
    }

    let std_form = standardize(lp);
    let m = std_form.rows.len();
    let n = std_form.num_vars;

    // Count slack/surplus columns; every row additionally gets one identity
    // column (usable as a phase-1 artificial), so the accumulated row
    // operations stay explicitly available for warm rhs refreshes.
    let mut n_slack = 0usize;
    for (_, op, _) in &std_form.rows {
        if *op != ConstraintOp::Eq {
            n_slack += 1;
        }
    }
    let artificial_base = n + n_slack;
    let n_total = artificial_base + m;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis = vec![usize::MAX; m];
    let mut signs = vec![1.0; m];

    let mut slack_cursor = n;

    for (row_idx, (coeffs, op, rhs)) in std_form.rows.iter().enumerate() {
        let mut row = vec![0.0; n_total + 1];
        row[..n].copy_from_slice(coeffs);
        let mut rhs = *rhs;
        let mut slack_col = None;
        match op {
            ConstraintOp::Le => {
                row[slack_cursor] = 1.0;
                slack_col = Some(slack_cursor);
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                row[slack_cursor] = -1.0;
                slack_col = Some(slack_cursor);
                slack_cursor += 1;
            }
            ConstraintOp::Eq => {}
        }
        // Make the rhs non-negative, remembering the sign for warm rhs
        // refreshes.
        if rhs < 0.0 {
            for value in row.iter_mut() {
                *value = -*value;
            }
            rhs = -rhs;
            signs[row_idx] = -1.0;
        }
        row[n_total] = rhs;

        // The identity column of this row (also the phase-1 artificial).
        let identity_col = artificial_base + row_idx;
        row[identity_col] = 1.0;

        // Choose the initial basic variable: a slack with +1 coefficient, or
        // the row's identity column.
        let basic = match slack_col {
            Some(col) if row[col] > 0.5 => col,
            _ => identity_col,
        };
        basis[row_idx] = basic;
        rows.push(row);
    }

    let mut tableau = Tableau {
        rows,
        basis,
        n_total,
        artificial_base,
        iterations: 0,
        budget: iteration_budget(lp, n_total, m),
        cancel: cancel.cloned(),
    };

    // Phase 1: minimise the sum of basic artificial variables.
    let needs_phase1 = tableau.basis.iter().any(|&b| b >= artificial_base);
    if needs_phase1 {
        let mut phase1_cost = vec![0.0; n_total];
        for slot in phase1_cost.iter_mut().skip(artificial_base) {
            *slot = 1.0;
        }
        match tableau.optimize(&phase1_cost) {
            PhaseOutcome::Optimal(optimum) => {
                if optimum > 1e-6 {
                    let mut solution = LpSolution::non_optimal(LpStatus::Infeasible);
                    solution.iterations = tableau.iterations;
                    return (solution, None);
                }
            }
            // Phase 1 is never unbounded (cost bounded below by zero), so
            // this arm is reachable only through numerical trouble.
            PhaseOutcome::Unbounded => {
                let mut solution = LpSolution::non_optimal(LpStatus::Infeasible);
                solution.iterations = tableau.iterations;
                return (solution, None);
            }
            PhaseOutcome::IterationLimit => {
                let mut solution = LpSolution::non_optimal(LpStatus::IterationLimit);
                solution.iterations = tableau.iterations;
                return (solution, None);
            }
            PhaseOutcome::Cancelled => {
                let mut solution = LpSolution::non_optimal(LpStatus::Cancelled);
                solution.iterations = tableau.iterations;
                return (solution, None);
            }
        }
        // Drive any artificial variable that is still basic (at level ~0)
        // out of the basis where possible; a row where no structural pivot
        // exists is redundant and keeps its artificial at level zero.
        for row in 0..tableau.rows.len() {
            let basic = tableau.basis[row];
            if basic >= artificial_base {
                let pivot_col = (0..artificial_base).find(|&j| tableau.rows[row][j].abs() > 1e-7);
                if let Some(col) = pivot_col {
                    tableau.pivot(row, col);
                }
            }
        }
        // Entering-column selection is capped at `artificial_base`, so the
        // identity block can never re-enter the basis in phase 2; unlike the
        // classic "zero the artificial columns" trick this keeps B⁻¹ intact
        // for warm restarts.
    }

    // Phase 2: minimise the real objective.
    let mut phase2_cost = vec![0.0; n_total];
    phase2_cost[..n].copy_from_slice(&std_form.cost);
    let optimum = match tableau.optimize(&phase2_cost) {
        PhaseOutcome::Optimal(optimum) => optimum,
        PhaseOutcome::Unbounded => {
            let mut solution = LpSolution::non_optimal(LpStatus::Unbounded);
            solution.iterations = tableau.iterations;
            return (solution, None);
        }
        PhaseOutcome::IterationLimit => {
            let mut solution = LpSolution::non_optimal(LpStatus::IterationLimit);
            solution.iterations = tableau.iterations;
            return (solution, None);
        }
        PhaseOutcome::Cancelled => {
            let mut solution = LpSolution::non_optimal(LpStatus::Cancelled);
            solution.iterations = tableau.iterations;
            return (solution, None);
        }
    };

    let values = extract_values(lp, &std_form.mapping, &tableau);
    let objective = user_objective(lp, optimum, std_form.offset);
    let iterations = tableau.iterations;

    // A snapshot is only useful when no artificial sits in the basis at a
    // meaningful level; redundant rows keep theirs at ~0, which the warm
    // path re-checks against the refreshed rhs.
    let snapshot = want_snapshot.then(|| BasisSnapshot {
        rows: tableau.rows,
        basis: tableau.basis,
        signs,
        n,
        artificial_base,
        n_total,
        structure: fingerprint(lp, &std_form.cost),
        warm_uses: 0,
    });

    (
        LpSolution {
            status: LpStatus::Optimal,
            values,
            objective,
            iterations,
            warm_started: false,
        },
        snapshot,
    )
}

/// Backwards-compatible cold solve.
pub(crate) fn solve(lp: &LinearProgram, cancel: Option<&CancelToken>) -> LpSolution {
    solve_cold(lp, false, cancel).0
}

/// Warm re-solve from a previous basis after bound-only (and constraint-rhs)
/// changes. Returns `None` when the snapshot does not structurally match the
/// program or the numerics force a cold fallback; in that case the snapshot
/// must be considered stale and replaced by the caller.
pub(crate) fn solve_from_basis(
    lp: &LinearProgram,
    snapshot: &mut BasisSnapshot,
    cancel: Option<&CancelToken>,
) -> Option<LpSolution> {
    if lp.num_variables() == 0 {
        return None;
    }
    let (mapping, num_vars) = build_mapping(lp);
    if num_vars != snapshot.n {
        return None;
    }
    let (cost, offset) = standard_cost(lp, &mapping, num_vars);
    if fingerprint(lp, &cost) != snapshot.structure {
        return None;
    }

    // Refresh the rhs column: new standard-form b, pushed through the
    // accumulated row operations held in the identity block.
    let b = standard_rhs(lp, &mapping);
    let m = snapshot.rows.len();
    if b.len() != m {
        return None;
    }
    for r in 0..m {
        let mut value = 0.0;
        for (k, (b_k, sign)) in b.iter().zip(snapshot.signs.iter()).enumerate() {
            let g = snapshot.rows[r][snapshot.artificial_base + k];
            if g != 0.0 {
                value += g * sign * b_k;
            }
        }
        let slot = snapshot.n_total;
        snapshot.rows[r][slot] = value;
    }

    // A basic artificial (redundant row in the parent) must stay at level
    // zero under the new rhs; otherwise the rows have become inconsistent in
    // a way only a cold phase 1 can sort out.
    for (row, &basic) in snapshot.basis.iter().enumerate() {
        if basic >= snapshot.artificial_base && snapshot.rows[row][snapshot.n_total].abs() > 1e-7 {
            return None;
        }
    }

    let mut tableau = Tableau {
        rows: std::mem::take(&mut snapshot.rows),
        basis: std::mem::take(&mut snapshot.basis),
        n_total: snapshot.n_total,
        artificial_base: snapshot.artificial_base,
        iterations: 0,
        budget: iteration_budget(lp, snapshot.n_total, m),
        cancel: cancel.cloned(),
    };
    let mut phase_cost = vec![0.0; snapshot.n_total];
    phase_cost[..num_vars].copy_from_slice(&cost);

    // Dual simplex repairs primal feasibility from the (still dual-feasible)
    // parent basis, then a primal clean-up pass polishes any reduced-cost
    // noise left by the refresh.
    let restore = |snapshot: &mut BasisSnapshot, tableau: Tableau| {
        snapshot.rows = tableau.rows;
        snapshot.basis = tableau.basis;
    };
    match tableau.dual_optimize(&phase_cost) {
        DualOutcome::Feasible => {}
        DualOutcome::Infeasible { row } => {
            // Dual unbounded ⇔ primal infeasible — but only accept the
            // verdict when the triggering row still certifies it against
            // the un-drifted constraint data. Branch-and-bound *prunes* on
            // Infeasible, so a drift artefact here would silently cut off
            // feasible subtrees; a failed certificate bails to a cold solve
            // instead.
            if !certify_infeasible_row(
                lp,
                &mapping,
                &tableau.rows[row],
                &snapshot.signs,
                num_vars,
                snapshot.artificial_base,
                &b,
            ) {
                return None;
            }
            // The tableau basis is still dual feasible, so the snapshot
            // remains valid for further warm solves.
            let iterations = tableau.iterations;
            snapshot.warm_uses += 1;
            restore(snapshot, tableau);
            let mut solution = LpSolution::non_optimal(LpStatus::Infeasible);
            solution.iterations = iterations;
            solution.warm_started = true;
            return Some(solution);
        }
        // A tripped cancel token also declines the warm solve: the cold
        // fallback polls the same token on entry and reports `Cancelled`
        // immediately, which keeps the decline/fallback contract uniform.
        DualOutcome::IterationLimit | DualOutcome::Cancelled => return None,
    }
    let optimum = match tableau.optimize(&phase_cost) {
        PhaseOutcome::Optimal(optimum) => optimum,
        // A dual-feasible start precludes an unbounded primal; reaching
        // either arm means numerical trouble — fall back to a cold solve.
        // Cancellation likewise declines to the cold path.
        PhaseOutcome::Unbounded | PhaseOutcome::IterationLimit | PhaseOutcome::Cancelled => {
            return None
        }
    };

    let values = extract_values(lp, &mapping, &tableau);
    // Cheap end-to-end validation: the warm optimum must be primal feasible
    // for the *actual* program. Guards against drift accumulated across many
    // rhs refreshes.
    if !lp.is_feasible(&values, 1e-6) {
        return None;
    }
    let objective = user_objective(lp, optimum, offset);
    let iterations = tableau.iterations;
    snapshot.warm_uses += 1;
    restore(snapshot, tableau);
    Some(LpSolution {
        status: LpStatus::Optimal,
        values,
        objective,
        iterations,
        warm_started: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearProgram;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximization_with_two_constraints() {
        // max x + y, x + 2y <= 4, 3x + y <= 6, x,y >= 0 → optimum 2.8 at (1.6, 1.2).
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(&[(x, 3.0), (y, 1.0)], ConstraintOp::Le, 6.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.8);
        assert_close(sol.values[0], 1.6);
        assert_close(sol.values[1], 1.2);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y, x + y >= 4, x >= 1, y >= 0 → optimum at (4, 0) = 8.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 2.0), (y, 3.0)], false);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 4.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 8.0);
        assert_close(sol.values[0], 4.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 1.0)], true);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 3, x - y = 1 → x = 2, y = 1.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], false);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.values[0], 2.0);
        assert_close(sol.values[1], 1.0);
    }

    #[test]
    fn free_variables_are_supported() {
        // min x, with x free and x >= -5 as a row constraint → optimum -5.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(f64::NEG_INFINITY, f64::INFINITY);
        lp.set_objective(&[(x, 1.0)], false);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, -5.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -5.0);
        assert_close(sol.values[0], -5.0);
    }

    #[test]
    fn negative_bounds_are_handled_by_shifting() {
        // max x + y with x in [-3, -1], y in [-2, 2], x + y <= -2.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(-3.0, -1.0);
        let y = lp.add_variable(-2.0, 2.0);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, -2.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -2.0);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn mirrored_variables_only_upper_bound() {
        // min x with x <= 4 (no lower bound) and x >= 1 via a row.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(f64::NEG_INFINITY, 4.0);
        lp.set_objective(&[(x, 1.0)], true);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn upper_bounds_limit_the_optimum() {
        // max x + 2y with x, y in [0, 1] and x + y <= 1.5.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        let y = lp.add_variable(0.0, 1.0);
        lp.set_objective(&[(x, 1.0), (y, 2.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 1.5);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.5);
        assert_close(sol.values[1], 1.0);
        assert_close(sol.values[0], 0.5);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; Bland's rule must terminate.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        let z = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 0.75), (y, -150.0), (z, 0.02)], true);
        lp.add_constraint(&[(x, 0.25), (y, -60.0), (z, -0.04)], ConstraintOp::Le, 0.0);
        lp.add_constraint(&[(x, 0.5), (y, -90.0), (z, -0.02)], ConstraintOp::Le, 0.0);
        lp.add_constraint(&[(z, 1.0)], ConstraintOp::Le, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn feasibility_only_problem_returns_a_point() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(-1.0, 1.0);
        let y = lp.add_variable(-1.0, 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 0.5);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 0.2);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn empty_program_is_trivially_feasible() {
        let lp = LinearProgram::new();
        assert_eq!(lp.solve().status, LpStatus::Optimal);
    }

    #[test]
    fn iteration_limit_is_reported_not_panicked() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, f64::INFINITY);
        let y = lp.add_variable(0.0, f64::INFINITY);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(&[(x, 3.0), (y, 1.0)], ConstraintOp::Le, 6.0);
        lp.set_iteration_limit(Some(0));
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::IterationLimit);
        lp.set_iteration_limit(None);
        assert_eq!(lp.solve().status, LpStatus::Optimal);
    }

    #[test]
    fn warm_restart_after_bound_tightening_matches_cold() {
        // max x + y, x + 2y <= 4, 3x + y <= 6, x,y in [0, 5].
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 5.0);
        let y = lp.add_variable(0.0, 5.0);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
        lp.add_constraint(&[(x, 3.0), (y, 1.0)], ConstraintOp::Le, 6.0);
        let (cold, snapshot) = lp.solve_with_snapshot();
        assert_eq!(cold.status, LpStatus::Optimal);
        let mut snapshot = snapshot.expect("optimal solve yields a snapshot");

        // Tighten x to [0, 1]: the warm solve must agree with a cold solve.
        lp.set_bounds(x, 0.0, 1.0);
        let warm = lp
            .solve_from_basis(&mut snapshot)
            .expect("bound-only change stays warm-startable");
        assert!(warm.warm_started);
        let cold2 = lp.solve();
        assert_eq!(warm.status, cold2.status);
        assert_close(warm.objective, cold2.objective);
        assert!(lp.is_feasible(&warm.values, 1e-6));
        assert_eq!(snapshot.warm_uses(), 1);

        // Restore the original bounds: warm again, back to the first optimum.
        lp.set_bounds(x, 0.0, 5.0);
        let warm2 = lp
            .solve_from_basis(&mut snapshot)
            .expect("restored bounds stay warm-startable");
        assert_close(warm2.objective, cold.objective);
    }

    #[test]
    fn warm_restart_detects_infeasibility() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 5.0);
        let y = lp.add_variable(0.0, 5.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        let (cold, snapshot) = lp.solve_with_snapshot();
        assert_eq!(cold.status, LpStatus::Optimal);
        let mut snapshot = snapshot.expect("snapshot");
        lp.set_bounds(x, 0.0, 1.0);
        lp.set_bounds(y, 0.0, 1.0);
        let warm = lp.solve_from_basis(&mut snapshot).expect("warm");
        assert_eq!(warm.status, LpStatus::Infeasible);
        // The snapshot survives an infeasible node; loosening warm-solves again.
        lp.set_bounds(y, 0.0, 5.0);
        let warm2 = lp.solve_from_basis(&mut snapshot).expect("warm");
        assert_eq!(warm2.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&warm2.values, 1e-6));
    }

    #[test]
    fn warm_restart_declines_structural_changes() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 5.0);
        lp.set_objective(&[(x, 1.0)], true);
        let (_, snapshot) = lp.solve_with_snapshot();
        let mut snapshot = snapshot.expect("snapshot");
        // Objective change breaks dual feasibility → decline.
        lp.set_objective(&[(x, -1.0)], true);
        assert!(lp.solve_from_basis(&mut snapshot).is_none());
    }

    #[test]
    fn warm_restart_declines_finiteness_pattern_changes() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 5.0);
        let y = lp.add_variable(0.0, 5.0);
        lp.set_objective(&[(x, 1.0), (y, 1.0)], false);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        let (_, snapshot) = lp.solve_with_snapshot();
        let mut snapshot = snapshot.expect("snapshot");
        // Dropping the upper bound changes the standard-form layout.
        lp.set_bounds(x, 0.0, f64::INFINITY);
        assert!(lp.solve_from_basis(&mut snapshot).is_none());
    }

    #[test]
    fn infeasible_solves_produce_no_snapshot() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let (solution, snapshot) = lp.solve_with_snapshot();
        assert_eq!(solution.status, LpStatus::Infeasible);
        assert!(snapshot.is_none());
    }

    #[test]
    fn warm_restart_tracks_constraint_rhs_changes() {
        // The refinement template edits octagon-difference row rhs values;
        // those are part of the refreshed b vector, so warm solves see them.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(0.0, 5.0);
        lp.set_objective(&[(x, 1.0)], true);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 4.0);
        let (cold, snapshot) = lp.solve_with_snapshot();
        assert_close(cold.objective, 4.0);
        let mut snapshot = snapshot.expect("snapshot");
        lp.set_constraint_rhs(0, 2.5);
        let warm = lp.solve_from_basis(&mut snapshot).expect("warm");
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_close(warm.objective, 2.5);
    }
}

//! Big-M encoding of ReLU constraints.

use crate::{ConstraintOp, MilpProblem, VarId};

/// The variables participating in one encoded ReLU `y = max(0, x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReluEncoding {
    /// Pre-activation variable `x`.
    pub input: VarId,
    /// Post-activation variable `y`.
    pub output: VarId,
    /// Phase indicator `δ` (`None` when the phase is fixed by the bounds, so
    /// no binary variable was needed).
    pub indicator: Option<VarId>,
}

/// Encodes `output = max(0, input)` into `problem`, given known bounds
/// `[lower, upper]` on the pre-activation `input`.
///
/// Three cases, exactly as in MILP encodings of piecewise-linear networks
/// (Cheng et al. 2017, Lomuscio & Maganti 2017 — the approaches the paper
/// cites as its verification back-ends):
///
/// * `lower >= 0`: the ReLU is always active → `output = input` (no binary).
/// * `upper <= 0`: the ReLU is always inactive → `output = 0` (no binary).
/// * otherwise, introduce a binary `δ` and the big-M constraints
///   `output ≥ input`, `output ≥ 0`, `output ≤ input − lower·(1 − δ)`,
///   `output ≤ upper·δ`.
///
/// Tight pre-activation bounds (from abstract interpretation or from the
/// assume-guarantee envelope) therefore directly shrink both the number of
/// binaries and the big-M constants — the mechanism behind experiment E4.
///
/// The `output` variable must already exist in `problem`; its bounds are
/// tightened to `[max(0, lower), max(0, upper)]`.
///
/// # Panics
/// Panics when `lower > upper` or either bound is non-finite.
pub fn encode_relu_big_m(
    problem: &mut MilpProblem,
    input: VarId,
    output: VarId,
    lower: f64,
    upper: f64,
) -> ReluEncoding {
    assert!(
        lower.is_finite() && upper.is_finite(),
        "ReLU encoding requires finite pre-activation bounds"
    );
    assert!(
        lower <= upper,
        "ReLU bounds are inverted: [{lower}, {upper}]"
    );

    problem
        .lp_mut()
        .tighten_bounds(output, lower.max(0.0), upper.max(0.0));

    if lower >= 0.0 {
        // Always active: y = x.
        problem
            .lp_mut()
            .add_constraint(&[(output, 1.0), (input, -1.0)], ConstraintOp::Eq, 0.0);
        return ReluEncoding {
            input,
            output,
            indicator: None,
        };
    }
    if upper <= 0.0 {
        // Always inactive: y = 0.
        problem
            .lp_mut()
            .add_constraint(&[(output, 1.0)], ConstraintOp::Eq, 0.0);
        return ReluEncoding {
            input,
            output,
            indicator: None,
        };
    }

    let delta = problem.add_binary();
    // y >= x
    problem
        .lp_mut()
        .add_constraint(&[(output, 1.0), (input, -1.0)], ConstraintOp::Ge, 0.0);
    // y >= 0 is implied by the tightened lower bound on `output`.
    // y <= x - lower * (1 - delta)  ⇔  y - x - lower*delta <= -lower
    problem.lp_mut().add_constraint(
        &[(output, 1.0), (input, -1.0), (delta, -lower)],
        ConstraintOp::Le,
        -lower,
    );
    // y <= upper * delta
    problem
        .lp_mut()
        .add_constraint(&[(output, 1.0), (delta, -upper)], ConstraintOp::Le, 0.0);

    ReluEncoding {
        input,
        output,
        indicator: Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MilpStatus, SOLVER_EPS};

    /// Builds a MILP with one encoded ReLU, fixes the input to `x_value` and
    /// maximises / minimises the output to confirm `y = max(0, x)`.
    fn relu_output_at(x_value: f64, lower: f64, upper: f64) -> f64 {
        let mut milp = MilpProblem::new();
        let x = milp.add_variable(lower, upper);
        let y = milp.add_variable(0.0, f64::INFINITY);
        encode_relu_big_m(&mut milp, x, y, lower, upper);
        milp.lp_mut().tighten_bounds(x, x_value, x_value);
        milp.lp_mut().set_objective(&[(y, 1.0)], true);
        let max_sol = milp.solve();
        assert_eq!(max_sol.status, MilpStatus::Optimal);
        milp.lp_mut().set_objective(&[(y, 1.0)], false);
        let min_sol = milp.solve();
        assert_eq!(min_sol.status, MilpStatus::Optimal);
        assert!(
            (max_sol.objective - min_sol.objective).abs() < 1e-6,
            "ReLU output is not uniquely determined: [{}, {}]",
            min_sol.objective,
            max_sol.objective
        );
        max_sol.objective
    }

    #[test]
    fn relu_matches_reference_on_grid() {
        for x in [-2.0, -0.7, 0.0, 0.3, 1.9] {
            let encoded = relu_output_at(x, -2.0, 2.0);
            assert!((encoded - x.max(0.0)).abs() < 1e-6, "x = {x}: {encoded}");
        }
    }

    #[test]
    fn always_active_case_has_no_binary() {
        let mut milp = MilpProblem::new();
        let x = milp.add_variable(0.5, 2.0);
        let y = milp.add_variable(0.0, f64::INFINITY);
        let enc = encode_relu_big_m(&mut milp, x, y, 0.5, 2.0);
        assert!(enc.indicator.is_none());
        assert_eq!(milp.binaries().len(), 0);
    }

    #[test]
    fn always_inactive_case_forces_zero() {
        let mut milp = MilpProblem::new();
        let x = milp.add_variable(-3.0, -1.0);
        let y = milp.add_variable(0.0, f64::INFINITY);
        let enc = encode_relu_big_m(&mut milp, x, y, -3.0, -1.0);
        assert!(enc.indicator.is_none());
        milp.lp_mut().set_objective(&[(y, 1.0)], true);
        let sol = milp.solve();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!(sol.objective.abs() < SOLVER_EPS);
    }

    #[test]
    fn unstable_case_uses_binary_and_bounds_output() {
        let mut milp = MilpProblem::new();
        let x = milp.add_variable(-1.0, 2.0);
        let y = milp.add_variable(0.0, f64::INFINITY);
        let enc = encode_relu_big_m(&mut milp, x, y, -1.0, 2.0);
        assert!(enc.indicator.is_some());
        // The maximal output over all inputs is the upper bound.
        milp.lp_mut().set_objective(&[(y, 1.0)], true);
        let sol = milp.solve();
        assert!((sol.objective - 2.0).abs() < 1e-6);
        // And the minimal output is zero.
        milp.lp_mut().set_objective(&[(y, 1.0)], false);
        let sol = milp.solve();
        assert!(sol.objective.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn requires_finite_bounds() {
        let mut milp = MilpProblem::new();
        let x = milp.add_variable(f64::NEG_INFINITY, f64::INFINITY);
        let y = milp.add_variable(0.0, f64::INFINITY);
        let _ = encode_relu_big_m(&mut milp, x, y, f64::NEG_INFINITY, 1.0);
    }
}

//! The `SolverBackend` seam: a single solve entry point the verification
//! layers program against, so alternative MILP engines (parallel
//! branch-and-bound, external solvers) can be plugged in without touching
//! `dpv-core`.

use std::fmt;

use dpv_trace::TraceHandle;

use crate::{
    BasisSnapshot, CancelToken, LpStatus, MilpProblem, MilpSolution, MilpStatus, SolveStats,
    SOLVER_EPS,
};

/// A MILP solving engine.
///
/// `dpv-core` encodes every verification question as a [`MilpProblem`] and
/// hands it to a backend; the backend returns a [`MilpSolution`] whose
/// status drives the safety verdict (`Infeasible` → safe, `Optimal` →
/// counterexample, `NodeLimit`/`Unbounded` → unknown). Implementations must
/// be `Send + Sync` so one backend instance can serve concurrent
/// verification jobs.
pub trait SolverBackend: fmt::Debug + Send + Sync {
    /// Short human-readable engine name, used in reports and benchmark ids.
    fn name(&self) -> &str;

    /// Solves `problem`. For feasibility problems (all-zero objective) the
    /// backend may stop at the first integer-feasible point.
    fn solve(&self, problem: &MilpProblem) -> MilpSolution;

    /// Solves `problem`, optionally priming the engine's warm-start state
    /// from `seed` and handing the final state back through it, so callers
    /// holding a pool of [`BasisSnapshot`]s (e.g. the obligation server's
    /// per-template snapshot pool) can chain repairs across problems.
    ///
    /// The default ignores the seed and leaves it untouched — engines
    /// without warm-start state (cold, exhaustive, external solvers) stay
    /// correct for free. Seeding is a pure performance hint: a stale or
    /// foreign snapshot fails the LP layer's structure/validation guards and
    /// the solve degrades to cold, never to a wrong verdict.
    fn solve_seeded(
        &self,
        problem: &MilpProblem,
        seed: &mut Option<BasisSnapshot>,
    ) -> MilpSolution {
        let _ = seed;
        self.solve(problem)
    }

    /// [`SolverBackend::solve_seeded`] with cooperative cancellation: engines
    /// that can poll a [`CancelToken`] return [`MilpStatus::Cancelled`]
    /// promptly once it trips (e.g. a request deadline expired).
    ///
    /// The default ignores the token and runs [`SolverBackend::solve_seeded`]
    /// to completion — cancellation support is an engine capability, not a
    /// correctness requirement, so engines without it stay correct (merely
    /// less responsive to deadlines).
    fn solve_cancellable(
        &self,
        problem: &MilpProblem,
        seed: &mut Option<BasisSnapshot>,
        cancel: Option<&CancelToken>,
    ) -> MilpSolution {
        let _ = cancel;
        self.solve_seeded(problem, seed)
    }

    /// [`SolverBackend::solve_cancellable`] recording per-node solver
    /// telemetry through a [`TraceHandle`].
    ///
    /// The default ignores the handle and runs
    /// [`SolverBackend::solve_cancellable`] — telemetry is an engine
    /// capability, never a correctness requirement, and a disabled handle
    /// must make the two entry points literally identical.
    fn solve_traced(
        &self,
        problem: &MilpProblem,
        seed: &mut Option<BasisSnapshot>,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> MilpSolution {
        let _ = trace;
        self.solve_cancellable(problem, seed, cancel)
    }
}

/// The crate's default engine: the depth-first branch-and-bound solver of
/// [`MilpProblem::solve`], with warm-started node relaxations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchAndBoundBackend;

impl SolverBackend for BranchAndBoundBackend {
    fn name(&self) -> &str {
        "branch-and-bound"
    }

    fn solve(&self, problem: &MilpProblem) -> MilpSolution {
        problem.solve()
    }

    fn solve_seeded(
        &self,
        problem: &MilpProblem,
        seed: &mut Option<BasisSnapshot>,
    ) -> MilpSolution {
        problem.solve_seeded(seed)
    }

    fn solve_cancellable(
        &self,
        problem: &MilpProblem,
        seed: &mut Option<BasisSnapshot>,
        cancel: Option<&CancelToken>,
    ) -> MilpSolution {
        problem.solve_seeded_cancellable(seed, cancel)
    }

    fn solve_traced(
        &self,
        problem: &MilpProblem,
        seed: &mut Option<BasisSnapshot>,
        cancel: Option<&CancelToken>,
        trace: &TraceHandle,
    ) -> MilpSolution {
        problem.solve_traced(seed, cancel, trace)
    }
}

/// The warm-start-free variant of [`BranchAndBoundBackend`]: every node pays
/// a cold two-phase simplex solve ([`MilpProblem::solve_cold`]). This is the
/// PR-2 reference engine, kept for benchmarking the warm-start speedup
/// (`benches/e8_warm_start.rs`) and for equivalence tests — the two engines
/// explore the identical tree and must return identical statuses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColdBranchAndBoundBackend;

impl SolverBackend for ColdBranchAndBoundBackend {
    fn name(&self) -> &str {
        "branch-and-bound(cold)"
    }

    fn solve(&self, problem: &MilpProblem) -> MilpSolution {
        problem.solve_cold()
    }
}

/// Returns the engine used when callers do not pick one explicitly.
pub fn default_backend() -> BranchAndBoundBackend {
    BranchAndBoundBackend
}

/// A reference engine that enumerates all `2^k` assignments of the binary
/// variables and solves one LP per assignment.
///
/// Exponential and only usable for small `k`, but its verdicts are trivially
/// trustworthy, which makes it the cross-check oracle for testing smarter
/// backends (the `SolverBackend`-seam tests assert it agrees with
/// [`BranchAndBoundBackend`] on verification fixtures). Every LP here is
/// deliberately solved **cold**: the oracle must not share the warm-start
/// machinery it is used to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveBackend {
    /// Refuses problems with more binaries than this (returns
    /// [`MilpStatus::NodeLimit`]) so a mis-routed large instance degrades
    /// into "unknown" instead of hanging.
    pub max_binaries: usize,
}

impl Default for ExhaustiveBackend {
    fn default() -> Self {
        Self { max_binaries: 16 }
    }
}

impl SolverBackend for ExhaustiveBackend {
    fn name(&self) -> &str {
        "exhaustive-enumeration"
    }

    fn solve(&self, problem: &MilpProblem) -> MilpSolution {
        let binaries = problem.binaries();
        let k = binaries.len();
        let mut stats = SolveStats::default();
        // The budget must stay below the mask width: `1u64 << 64` would wrap
        // and silently enumerate nothing, turning the oracle unsound.
        if k > self.max_binaries.min(63) {
            return MilpSolution {
                status: MilpStatus::NodeLimit,
                values: Vec::new(),
                objective: 0.0,
                stats,
            };
        }
        let feasibility_only = problem.lp().objective().iter().all(|&c| c == 0.0);
        let maximize = problem.lp().is_maximization();
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        // One scratch LP for all 2^k assignments: bounds are overwritten per
        // mask instead of cloning the whole model per assignment. Original
        // binary bounds are kept so assignments that conflict with an
        // already-fixed binary (e.g. a stable ReLU phase) stay infeasible.
        let mut scratch = problem.lp().clone();
        let saved_bounds: Vec<(f64, f64)> =
            binaries.iter().map(|&b| problem.lp().bounds(b)).collect();
        for mask in 0u64..(1u64 << k) {
            let mut conflict = false;
            for (bit, (&var, &(lo, hi))) in binaries.iter().zip(&saved_bounds).enumerate() {
                let value = if mask & (1 << bit) != 0 { 1.0 } else { 0.0 };
                if value < lo - SOLVER_EPS || value > hi + SOLVER_EPS {
                    conflict = true;
                    break;
                }
                scratch.set_bounds(var, value, value);
            }
            stats.nodes_explored += 1;
            if conflict {
                stats.nodes_pruned += 1;
                continue;
            }
            let solution = scratch.solve();
            stats.cold_solves += 1;
            stats.simplex_iterations += solution.iterations;
            match solution.status {
                LpStatus::Infeasible => {
                    stats.nodes_pruned += 1;
                    continue;
                }
                // `Cancelled` is unreachable here (the oracle solves without
                // a token) but folds into the same conservative stop.
                LpStatus::IterationLimit | LpStatus::Cancelled => {
                    return MilpSolution {
                        status: MilpStatus::IterationLimit,
                        values: Vec::new(),
                        objective: 0.0,
                        stats,
                    };
                }
                LpStatus::Unbounded => {
                    return MilpSolution {
                        status: MilpStatus::Unbounded,
                        values: Vec::new(),
                        objective: 0.0,
                        stats,
                    };
                }
                LpStatus::Optimal => {
                    let better = match &incumbent {
                        None => true,
                        Some((_, best)) => {
                            if maximize {
                                solution.objective > *best
                            } else {
                                solution.objective < *best
                            }
                        }
                    };
                    if better {
                        incumbent = Some((solution.values, solution.objective));
                        if feasibility_only {
                            break;
                        }
                    }
                }
            }
        }
        match incumbent {
            Some((values, objective)) => MilpSolution {
                status: MilpStatus::Optimal,
                values,
                objective,
                stats,
            },
            None => MilpSolution {
                status: MilpStatus::Infeasible,
                values: Vec::new(),
                objective: 0.0,
                stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp;

    fn knapsack() -> MilpProblem {
        // max 10a + 6b + 4c  s.t.  a + b + c <= 2 (binaries) → 16.
        let mut milp = MilpProblem::new();
        let a = milp.add_binary();
        let b = milp.add_binary();
        let c = milp.add_binary();
        milp.lp_mut()
            .set_objective(&[(a, 10.0), (b, 6.0), (c, 4.0)], true);
        milp.lp_mut()
            .add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0);
        milp
    }

    #[test]
    fn backends_agree_on_optimisation() {
        let milp = knapsack();
        let bnb = BranchAndBoundBackend.solve(&milp);
        let exhaustive = ExhaustiveBackend::default().solve(&milp);
        assert_eq!(bnb.status, MilpStatus::Optimal);
        assert_eq!(exhaustive.status, MilpStatus::Optimal);
        assert!((bnb.objective - exhaustive.objective).abs() < 1e-6);
    }

    #[test]
    fn backends_agree_on_infeasibility() {
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        assert_eq!(
            BranchAndBoundBackend.solve(&milp).status,
            MilpStatus::Infeasible
        );
        assert_eq!(
            ExhaustiveBackend::default().solve(&milp).status,
            MilpStatus::Infeasible
        );
    }

    #[test]
    fn exhaustive_respects_its_binary_budget() {
        let mut milp = MilpProblem::new();
        for _ in 0..5 {
            milp.add_binary();
        }
        let tiny = ExhaustiveBackend { max_binaries: 3 };
        assert_eq!(tiny.solve(&milp).status, MilpStatus::NodeLimit);
    }

    #[test]
    fn exhaustive_feasibility_stops_early() {
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        let solution = ExhaustiveBackend::default().solve(&milp);
        assert_eq!(solution.status, MilpStatus::Optimal);
        assert!(solution.stats.nodes_explored < 4);
    }

    #[test]
    fn exhaustive_counts_infeasible_assignments_as_pruned() {
        // x + y >= 3 over two binaries and one continuous z in [0, 1]:
        // no assignment is feasible, so all four enumerated LPs are pruned.
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        let z = milp.add_variable(0.0, 1.0);
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0), (z, 0.5)], ConstraintOp::Ge, 3.0);
        let solution = ExhaustiveBackend::default().solve(&milp);
        assert_eq!(solution.status, MilpStatus::Infeasible);
        assert_eq!(solution.stats.nodes_explored, 4);
        assert_eq!(solution.stats.nodes_pruned, 4);
    }

    #[test]
    fn exhaustive_respects_prefixed_binaries() {
        // The binary is pre-fixed to 1 (as a stable ReLU phase would be);
        // enumerating the 0 assignment must stay infeasible, so the optimum
        // reflects only the fixed phase.
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        milp.lp_mut().tighten_bounds(x, 1.0, 1.0);
        milp.lp_mut().set_objective(&[(x, -1.0)], true);
        let solution = ExhaustiveBackend::default().solve(&milp);
        assert_eq!(solution.status, MilpStatus::Optimal);
        assert!((solution.objective - (-1.0)).abs() < 1e-6);
        assert_eq!(solution.stats.nodes_pruned, 1);
    }

    #[test]
    fn backend_names_are_distinct() {
        assert_ne!(
            BranchAndBoundBackend.name(),
            ExhaustiveBackend::default().name()
        );
        assert_eq!(default_backend().name(), "branch-and-bound");
    }

    #[test]
    fn backends_are_object_safe() {
        let engines: Vec<Box<dyn SolverBackend>> = vec![
            Box::new(BranchAndBoundBackend),
            Box::new(ExhaustiveBackend::default()),
        ];
        for engine in &engines {
            assert_eq!(engine.solve(&knapsack()).status, MilpStatus::Optimal);
        }
    }
}

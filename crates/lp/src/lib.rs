//! # dpv-lp
//!
//! A self-contained linear-programming and mixed-integer-linear-programming
//! solver. It replaces the commercial MILP back-end used by the paper's
//! original toolchain (nn-dependability-kit reduces the network verification
//! problem to MILP and hands it to an off-the-shelf solver).
//!
//! The crate provides:
//!
//! * [`LinearProgram`] — a model builder for LPs with per-variable bounds
//!   and `≤ / ≥ / =` row constraints, solved by a dense two-phase primal
//!   simplex ([`LinearProgram::solve`]). A solved program can hand out a
//!   [`BasisSnapshot`] ([`LinearProgram::solve_with_snapshot`]); after
//!   **bound-only** edits ([`LinearProgram::set_bounds`],
//!   [`LinearProgram::set_constraint_rhs`]) the snapshot re-solves warm via
//!   a dual-simplex repair ([`LinearProgram::solve_from_basis`]) instead of
//!   two cold phases — the hot-path primitive behind incremental
//!   branch-and-bound and the refinement sweep.
//! * [`MilpProblem`] — an LP plus a set of binary variables, solved by
//!   branch-and-bound over the binaries ([`MilpProblem::solve`]), with every
//!   node relaxation warm-started from the most recent basis
//!   ([`SolveStats`] reports the warm/cold split; [`MilpProblem::solve_cold`]
//!   keeps the PR-2 cold path for comparison). A feasibility-only mode is
//!   what safety verification uses: *is there an assignment inside the
//!   envelope that triggers the risk condition?*
//! * [`encode_relu_big_m`] — the standard big-M encoding of a ReLU
//!   constraint `y = max(0, x)` with known pre-activation bounds, the
//!   building block of the network encoding in `dpv-core`.
//! * [`SolverBackend`] — the seam between problem encoding and solving:
//!   `dpv-core` routes every verification solve through this trait, so
//!   alternative engines (parallel branch-and-bound, external solvers) can
//!   be swapped in without touching the verification logic.
//!   [`BranchAndBoundBackend`] is the default engine; [`ExhaustiveBackend`]
//!   is a brute-force cross-check oracle for tests; and
//!   [`ParallelBranchAndBoundBackend`] explores branch-and-bound subtrees on
//!   work-stealing worker threads with a shared incumbent bound.
//! * [`CancelToken`] — a cooperative cancellation handle polled inside the
//!   simplex pivot loop and the branch-and-bound node loop. A tripped token
//!   (explicit or deadline-based) makes the solve return promptly with
//!   [`LpStatus::Cancelled`] / [`MilpStatus::Cancelled`] instead of hanging,
//!   which is what request-level deadline budgets in `dpv-serve` build on.
//!
//! Scale expectations: the paper's approach verifies only the close-to-output
//! tail of the perception network, so instances stay in the hundreds of
//! variables / constraints — well inside what a dense textbook simplex
//! handles comfortably and predictably.
//!
//! ## Example
//!
//! ```
//! use dpv_lp::{ConstraintOp, LinearProgram, LpStatus};
//!
//! // maximise x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  x,y >= 0
//! let mut lp = LinearProgram::new();
//! let x = lp.add_variable(0.0, f64::INFINITY);
//! let y = lp.add_variable(0.0, f64::INFINITY);
//! lp.set_objective(&[(x, 1.0), (y, 1.0)], true);
//! lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
//! lp.add_constraint(&[(x, 3.0), (y, 1.0)], ConstraintOp::Le, 6.0);
//! let solution = lp.solve();
//! match solution.status {
//!     LpStatus::Optimal => {
//!         assert!((solution.objective - 2.8).abs() < 1e-6);
//!     }
//!     _ => panic!("expected an optimum"),
//! }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod cancel;
mod milp;
mod model;
mod parallel;
mod relu;
mod simplex;

pub use backend::{
    default_backend, BranchAndBoundBackend, ColdBranchAndBoundBackend, ExhaustiveBackend,
    SolverBackend,
};
pub use cancel::CancelToken;
pub use milp::{MilpProblem, MilpSolution, MilpStatus, SolveStats};
pub use model::{Constraint, ConstraintOp, LinearProgram, LpSolution, LpStatus, VarId};
pub use parallel::ParallelBranchAndBoundBackend;
pub use relu::{encode_relu_big_m, ReluEncoding};
pub use simplex::BasisSnapshot;

/// Numerical tolerance used throughout the solver for feasibility and
/// integrality decisions.
pub const SOLVER_EPS: f64 = 1e-7;

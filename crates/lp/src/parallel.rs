//! Parallel branch-and-bound over binary variables.
//!
//! The verification MILPs this workspace produces are feasibility-dominated
//! tree searches whose nodes (LP relaxations) are independent except for the
//! incumbent bound — exactly the shape that parallelises well. The engine
//! here follows the classic work-stealing design:
//!
//! * every worker owns a LIFO deque of open subtrees (so each worker dives
//!   depth-first, keeping its scratch LP warm near the leaves) and steals
//!   the **oldest** node of a victim when idle (so stolen work is a subtree
//!   close to the root — a large chunk, amortising the steal);
//! * the root node starts in a shared [`Injector`] queue; termination is a
//!   single atomic counter of in-flight nodes;
//! * the incumbent (best integer-feasible solution so far) is published
//!   through a [`parking_lot::Mutex`] so every worker prunes against the
//!   globally best bound, not just its own;
//! * feasibility-only problems (all-zero objective — the query safety
//!   verification actually issues) stop the whole fleet at the first
//!   integer-feasible point via an atomic stop flag.
//!
//! Like the serial engine, node evaluation is allocation-free with respect
//! to the model: each worker keeps one scratch [`LinearProgram`], tightening
//! binary bounds on descent and restoring them from a saved snapshot for the
//! next node, instead of cloning the model per node.
//!
//! Determinism: verdict-level results (`Optimal` / `Infeasible` /
//! `Unbounded`) are scheduling-independent, but *which* feasible point or
//! counterexample is returned may vary between runs — branch-and-bound
//! callers that need reproducible artefacts deduplicate at a higher level
//! (see `RefinementVerifier`'s lowest-index selection rule in `dpv-core`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;

use crate::{
    BasisSnapshot, LinearProgram, LpStatus, MilpProblem, MilpSolution, MilpStatus, SolveStats,
    SolverBackend, VarId, SOLVER_EPS,
};

/// A branching decision list: the `(binary, fixed value)` pairs on the path
/// from the root to an open node.
type Node = Vec<(VarId, f64)>;

/// A [`SolverBackend`] that explores branch-and-bound subtrees on worker
/// threads.
///
/// With `workers == 1` (or a problem with fewer than two binaries) it
/// delegates to the serial [`MilpProblem::solve`], so a worker count of one
/// is always a safe default.
#[derive(Debug, Clone)]
pub struct ParallelBranchAndBoundBackend {
    workers: usize,
    name: String,
}

impl ParallelBranchAndBoundBackend {
    /// Creates an engine with the given number of worker threads (clamped to
    /// at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            name: format!("parallel-bnb({workers})"),
        }
    }

    /// Creates an engine sized to the host's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Default for ParallelBranchAndBoundBackend {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// State shared by every worker of one solve.
struct SearchState<'a> {
    problem: &'a MilpProblem,
    /// Pristine bounds of every binary, restored between nodes.
    saved_bounds: Vec<(VarId, f64, f64)>,
    feasibility_only: bool,
    maximize: bool,
    node_limit: usize,
    injector: Injector<Node>,
    stealers: Vec<Stealer<Node>>,
    /// Best integer-feasible `(values, objective)` found so far.
    incumbent: Mutex<Option<(Vec<f64>, f64)>>,
    /// Set when the whole search should halt (first feasible point of a
    /// feasibility-only problem, proven unboundedness, or the node limit).
    stop: AtomicBool,
    unbounded: AtomicBool,
    hit_limit: AtomicBool,
    /// Set when some relaxation ran out of its simplex pivot budget; the
    /// whole search then reports [`MilpStatus::IterationLimit`].
    iter_limited: AtomicBool,
    /// Nodes queued but not yet fully processed; zero means the tree is
    /// exhausted.
    pending: AtomicUsize,
    /// Global explored-node count charged against the node limit.
    nodes_charged: AtomicUsize,
}

impl SearchState<'_> {
    /// True when the worker loop should keep running.
    fn active(&self) -> bool {
        !self.stop.load(Ordering::Acquire) && self.pending.load(Ordering::Acquire) > 0
    }

    /// Takes the next open node: local deque first (depth-first), then the
    /// injector, then the cold end of a victim's deque.
    fn find_node(&self, local: &Worker<Node>) -> Option<Node> {
        if let Some(node) = local.pop() {
            return Some(node);
        }
        loop {
            match self.injector.steal() {
                Steal::Success(node) => return Some(node),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        for stealer in &self.stealers {
            loop {
                match stealer.steal() {
                    Steal::Success(node) => return Some(node),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Reads the incumbent objective, if any.
    fn incumbent_objective(&self) -> Option<f64> {
        self.incumbent.lock().as_ref().map(|(_, obj)| *obj)
    }

    /// Publishes an integer-feasible point, keeping the better of the old
    /// and new incumbents.
    fn offer_incumbent(&self, values: Vec<f64>, objective: f64) {
        let mut incumbent = self.incumbent.lock();
        let better = match incumbent.as_ref() {
            None => true,
            Some((_, best)) => {
                if self.maximize {
                    objective > *best
                } else {
                    objective < *best
                }
            }
        };
        if better {
            *incumbent = Some((values, objective));
        }
    }
}

impl SolverBackend for ParallelBranchAndBoundBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn solve(&self, problem: &MilpProblem) -> MilpSolution {
        let binaries = problem.binaries();
        if self.workers == 1 || binaries.len() < 2 {
            return problem.solve();
        }

        let state = SearchState {
            problem,
            saved_bounds: binaries
                .iter()
                .map(|&b| {
                    let (lo, hi) = problem.lp().bounds(b);
                    (b, lo, hi)
                })
                .collect(),
            feasibility_only: problem.lp().objective().iter().all(|&c| c == 0.0),
            maximize: problem.lp().is_maximization(),
            node_limit: problem.node_limit(),
            injector: Injector::new(),
            stealers: Vec::new(),
            incumbent: Mutex::new(None),
            stop: AtomicBool::new(false),
            unbounded: AtomicBool::new(false),
            hit_limit: AtomicBool::new(false),
            iter_limited: AtomicBool::new(false),
            pending: AtomicUsize::new(1),
            nodes_charged: AtomicUsize::new(0),
        };
        state.injector.push(Node::new());

        let locals: Vec<Worker<Node>> = (0..self.workers).map(|_| Worker::new_lifo()).collect();
        let mut state = state;
        state.stealers = locals.iter().map(Worker::stealer).collect();
        let state = &state;

        let stats = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = locals
                .into_iter()
                .map(|local| {
                    scope.spawn(move |_| {
                        let mut scratch = state.problem.lp().clone();
                        // Per-worker rolling warm-start basis. Any basis of
                        // the shared matrix is dual feasible for any node, so
                        // a stolen subtree keeps warm-starting from whatever
                        // this worker solved last — a steal never forces a
                        // cold solve; only each worker's very first node (or
                        // a numerical bail-out) pays the two cold phases.
                        let mut warm: Option<BasisSnapshot> = None;
                        let mut stats = SolveStats::default();
                        // Idle backoff: yield first (cheap when a node is
                        // about to appear), then sleep so starved workers on
                        // an oversubscribed host stop stealing cycles from
                        // the worker running a long LP solve.
                        let mut idle_rounds = 0u32;
                        while state.active() {
                            match state.find_node(&local) {
                                Some(node) => {
                                    idle_rounds = 0;
                                    process_node(
                                        state,
                                        &local,
                                        &mut scratch,
                                        &mut warm,
                                        &mut stats,
                                        node,
                                    );
                                    state.pending.fetch_sub(1, Ordering::AcqRel);
                                }
                                None => {
                                    idle_rounds += 1;
                                    if idle_rounds > 16 {
                                        std::thread::sleep(std::time::Duration::from_micros(50));
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                        stats
                    })
                })
                .collect();
            let mut total = SolveStats::default();
            let mut panicked = false;
            for handle in handles {
                // A panicking worker loses its per-worker statistics but must
                // not take down the solve: siblings keep draining the tree,
                // and the search is marked incomplete below so the result
                // degrades to "unknown" rather than claiming a proof the dead
                // worker never finished.
                match handle.join() {
                    Ok(stats) => total += stats,
                    Err(_) => panicked = true,
                }
            }
            (total, panicked)
        });
        // `scope` itself only errs when a spawned thread panicked; all joins
        // above already swallow that, but stay defensive rather than unwrap.
        let (stats, worker_panicked) = stats.unwrap_or((SolveStats::default(), true));

        let incumbent = state.incumbent.lock().take();
        // A dead worker may have dropped queued subtrees on the floor; treat
        // the search as truncated (NodeLimit-class "unknown") unless it is a
        // feasibility problem that already found its witness.
        let hit_limit = state.hit_limit.load(Ordering::Acquire) || worker_panicked;
        let iter_limited = state.iter_limited.load(Ordering::Acquire);
        if state.unbounded.load(Ordering::Acquire) {
            return MilpSolution {
                status: MilpStatus::Unbounded,
                values: Vec::new(),
                objective: 0.0,
                stats,
            };
        }
        match incumbent {
            Some((values, objective)) => MilpSolution {
                // A feasibility-only search is complete at the first feasible
                // point even when another worker tripped a limit in the same
                // instant; an optimisation search interrupted by a limit has
                // not proven its incumbent optimal.
                status: if state.feasibility_only || !(hit_limit || iter_limited) {
                    MilpStatus::Optimal
                } else if iter_limited {
                    MilpStatus::IterationLimit
                } else {
                    MilpStatus::NodeLimit
                },
                values,
                objective,
                stats,
            },
            None => MilpSolution {
                status: if iter_limited {
                    MilpStatus::IterationLimit
                } else if hit_limit {
                    MilpStatus::NodeLimit
                } else {
                    MilpStatus::Infeasible
                },
                values: Vec::new(),
                objective: 0.0,
                stats,
            },
        }
    }
}

/// Evaluates one node against the worker's scratch LP and pushes any
/// children onto the worker's own deque (LIFO, so the relaxation-suggested
/// branch is explored first).
fn process_node(
    state: &SearchState<'_>,
    local: &Worker<Node>,
    scratch: &mut LinearProgram,
    warm: &mut Option<BasisSnapshot>,
    stats: &mut SolveStats,
    fixings: Node,
) {
    let charged = state.nodes_charged.fetch_add(1, Ordering::AcqRel);
    if charged >= state.node_limit {
        state.hit_limit.store(true, Ordering::Release);
        state.stop.store(true, Ordering::Release);
        return;
    }
    stats.nodes_explored += 1;

    // Restore the pristine binary bounds, then tighten to this node's
    // decisions. A fixing outside the variable's original bounds (a
    // pre-fixed binary, e.g. a stable ReLU phase) is an infeasible node.
    for &(var, lo, hi) in &state.saved_bounds {
        scratch.set_bounds(var, lo, hi);
    }
    for &(var, value) in &fixings {
        let (lo, hi) = state.problem.lp().bounds(var);
        if value < lo - SOLVER_EPS || value > hi + SOLVER_EPS {
            return;
        }
        scratch.set_bounds(var, value, value);
    }
    let solution = crate::milp::solve_node_lp(
        scratch,
        warm,
        true,
        stats,
        None,
        &dpv_trace::TraceHandle::disabled(),
    );
    let binaries = state.problem.binaries();
    match solution.status {
        LpStatus::Infeasible => return,
        // `Cancelled` is unreachable (no token is threaded into the parallel
        // engine yet) but degrades identically if it ever appears.
        LpStatus::IterationLimit | LpStatus::Cancelled => {
            state.iter_limited.store(true, Ordering::Release);
            state.stop.store(true, Ordering::Release);
            return;
        }
        LpStatus::Unbounded => {
            if fixings.len() == binaries.len() {
                // Every binary fixed: the unbounded ray is integer feasible,
                // so the MILP itself is unbounded.
                state.unbounded.store(true, Ordering::Release);
                state.stop.store(true, Ordering::Release);
                return;
            }
        }
        LpStatus::Optimal => {
            if let Some(best) = state.incumbent_objective() {
                let worse = if state.maximize {
                    solution.objective <= best + SOLVER_EPS
                } else {
                    solution.objective >= best - SOLVER_EPS
                };
                if worse {
                    stats.nodes_pruned += 1;
                    return;
                }
            }
        }
    }

    let fractional = if solution.status == LpStatus::Optimal {
        // Same branching rule as the serial engine (most-fractional for
        // feasibility-only problems), so serial and parallel explore the
        // same tree modulo scheduling.
        crate::milp::select_branching_variable(
            binaries,
            &fixings,
            &solution.values,
            state.feasibility_only,
        )
    } else {
        binaries
            .iter()
            .copied()
            .find(|&b| fixings.iter().all(|(v, _)| *v != b))
    };

    match fractional {
        None if solution.status == LpStatus::Optimal => {
            state.offer_incumbent(solution.values, solution.objective);
            if state.feasibility_only {
                state.stop.store(true, Ordering::Release);
            }
        }
        None => {
            // Unreachable: an unbounded relaxation with every binary fixed
            // already flagged the MILP unbounded above.
        }
        Some(branch_var) => {
            let suggested = if solution.status == LpStatus::Optimal {
                solution.values[branch_var].round().clamp(0.0, 1.0)
            } else {
                1.0
            };
            let other = 1.0 - suggested;
            let mut first = fixings.clone();
            first.push((branch_var, other));
            let mut second = fixings;
            second.push((branch_var, suggested));
            // Count the children as in flight *before* they become visible
            // to stealers, so `pending` can never under-count.
            state.pending.fetch_add(2, Ordering::AcqRel);
            local.push(first);
            local.push(second);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchAndBoundBackend, ConstraintOp, ExhaustiveBackend};

    fn knapsack() -> MilpProblem {
        // max 10a + 6b + 4c  s.t.  a + b + c <= 2 (binaries) → 16.
        let mut milp = MilpProblem::new();
        let a = milp.add_binary();
        let b = milp.add_binary();
        let c = milp.add_binary();
        milp.lp_mut()
            .set_objective(&[(a, 10.0), (b, 6.0), (c, 4.0)], true);
        milp.lp_mut()
            .add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0);
        milp
    }

    #[test]
    fn matches_serial_optimum_on_the_knapsack() {
        for workers in [1, 2, 4, 8] {
            let backend = ParallelBranchAndBoundBackend::new(workers);
            let solution = backend.solve(&knapsack());
            assert_eq!(solution.status, MilpStatus::Optimal, "{workers} workers");
            assert!(
                (solution.objective - 16.0).abs() < 1e-6,
                "{workers} workers: objective {}",
                solution.objective
            );
            assert!(knapsack().is_feasible(&solution.values, 1e-6));
            assert!(solution.stats.nodes_explored >= 1);
        }
    }

    #[test]
    fn detects_infeasibility() {
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        let solution = ParallelBranchAndBoundBackend::new(4).solve(&milp);
        assert_eq!(solution.status, MilpStatus::Infeasible);
        assert!(!solution.has_solution());
    }

    #[test]
    fn feasibility_search_stops_at_the_first_point() {
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        let z = milp.add_variable(-1.0, 1.0);
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], ConstraintOp::Ge, 1.5);
        let solution = ParallelBranchAndBoundBackend::new(4).solve(&milp);
        assert_eq!(solution.status, MilpStatus::Optimal);
        assert!(milp.is_feasible(&solution.values, 1e-6));
    }

    #[test]
    fn reports_unbounded_milps() {
        let mut milp = MilpProblem::new();
        let b = milp.add_binary();
        let _b2 = milp.add_binary();
        let w = milp.add_variable(0.0, f64::INFINITY);
        milp.lp_mut().set_objective(&[(w, 1.0)], true);
        milp.lp_mut()
            .add_constraint(&[(w, 1.0), (b, -1.0)], ConstraintOp::Ge, 0.0);
        let solution = ParallelBranchAndBoundBackend::new(4).solve(&milp);
        assert_eq!(solution.status, MilpStatus::Unbounded);
    }

    #[test]
    fn respects_the_node_limit() {
        let mut milp = MilpProblem::new();
        for _ in 0..6 {
            let _ = milp.add_binary();
        }
        let vars: Vec<_> = milp.binaries().to_vec();
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        milp.lp_mut().add_constraint(&coeffs, ConstraintOp::Eq, 2.5);
        milp.set_node_limit(1);
        let solution = ParallelBranchAndBoundBackend::new(4).solve(&milp);
        assert_eq!(solution.status, MilpStatus::NodeLimit);
    }

    #[test]
    fn agrees_with_the_exhaustive_oracle_on_a_banded_problem() {
        // min x + y + 0.5 w  s.t.  x + y + w >= 1.2, w in [0, 1].
        let mut milp = MilpProblem::new();
        let x = milp.add_binary();
        let y = milp.add_binary();
        let w = milp.add_variable(0.0, 1.0);
        milp.lp_mut()
            .set_objective(&[(x, 1.0), (y, 1.0), (w, 0.5)], false);
        milp.lp_mut()
            .add_constraint(&[(x, 1.0), (y, 1.0), (w, 1.0)], ConstraintOp::Ge, 1.2);
        let parallel = ParallelBranchAndBoundBackend::new(4).solve(&milp);
        let oracle = ExhaustiveBackend::default().solve(&milp);
        assert_eq!(parallel.status, oracle.status);
        assert!((parallel.objective - oracle.objective).abs() < 1e-6);
    }

    #[test]
    fn single_worker_delegates_to_the_serial_engine() {
        let milp = knapsack();
        let serial = BranchAndBoundBackend.solve(&milp);
        let one = ParallelBranchAndBoundBackend::new(1).solve(&milp);
        assert_eq!(serial, one);
    }

    #[test]
    fn names_include_the_worker_count() {
        assert_eq!(
            ParallelBranchAndBoundBackend::new(4).name(),
            "parallel-bnb(4)"
        );
        assert_eq!(ParallelBranchAndBoundBackend::new(0).workers(), 1);
        assert!(ParallelBranchAndBoundBackend::default().workers() >= 1);
    }
}

//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheaply clonable handle (an `Arc` around an atomic
//! flag plus an optional monotonic deadline) that callers thread into the
//! simplex and branch-and-bound inner loops. The loops poll it every few
//! dozen pivots/nodes; once it trips, the solve winds down promptly and
//! reports [`crate::LpStatus::Cancelled`] / [`crate::MilpStatus::Cancelled`]
//! instead of a verdict-bearing status. Cancellation is purely *cooperative*:
//! it never corrupts solver state, it only makes the engine return early with
//! an honest "no result" status, so a request-level deadline can drain to a
//! complete report instead of hanging on one degenerate obligation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation handle shared between a solve's requester and
/// the solver inner loops.
///
/// Clones share the same underlying state: cancelling any clone cancels them
/// all. A token trips either explicitly ([`CancelToken::cancel`]) or
/// implicitly once its monotonic deadline (if any) passes.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline; it trips only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `budget` has elapsed from now
    /// (measured on the monotonic clock).
    pub fn with_deadline(budget: Duration) -> Self {
        Self {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Trips the token; every holder observes it on the next poll.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
            || self
                .inner
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Time left until the deadline trips, when one was set. `None` for
    /// deadline-free tokens; zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.remaining().is_none());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn zero_deadline_is_immediately_cancelled() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_deadline_is_not_cancelled_yet() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().is_some_and(|r| r > Duration::ZERO));
    }
}

//! E8: incremental solving — warm-started dual simplex + the MILP encoding
//! template, versus the PR-2 cold path.
//!
//! Two workloads on the E6 cut-4 harness (the widened envelope at the
//! earlier cut, whose MILPs have 20+ unstable ReLUs and genuinely deep
//! branch-and-bound trees):
//!
//! * **e6-cut4-refute** — the gap-calibrated refutation MILP from E7, solved
//!   by the cold engine (`branch-and-bound(cold)`, every node pays two full
//!   simplex phases — exactly PR 2's behaviour) and by the warm engine
//!   (every node after the root re-solves from the rolling basis via dual
//!   simplex). Isolates the solver-level win and reports the warm-hit rate
//!   and total pivot counts.
//! * **refine-sweep** — a full refinement sweep over the widened cut-4
//!   envelope with a reachable risk threshold: spurious corner
//!   counterexamples force region splits, so one sweep re-solves the same
//!   (tail, risk, characterizer) triple over dozens of sub-boxes. The PR-2
//!   variant re-encodes every sub-box and solves cold; the PR-3 variant
//!   instantiates the one `EncodingTemplate` skeleton per sub-box and solves
//!   warm. Both produce identical verdicts (asserted); the end-to-end
//!   speedup is the headline number.
//!
//! Run with `CRITERION_JSON=BENCH_e8.json` for machine-readable results;
//! besides the timing records the file carries `e8/refine-sweep/speedup-permille`
//! (cold mean ÷ warm mean × 1000) and `e8/…/warm-hit-permille` metric
//! records, so CI artifacts document both acceptance numbers — the ≥1.5×
//! end-to-end win and the warm majority — without parsing stdout. Unlike E7
//! this benchmark is single-threaded throughout: warm starting composes with
//! the parallel backend (each worker keeps its own rolling basis), but the
//! comparison here isolates the incremental-solving effect.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_bench::{bench_config, permille, quick_outcome};
use dpv_core::{
    encode_verification, Characterizer, CharacterizerConfig, InputProperty, RefinementVerifier,
    RiskCondition, StartRegion, VerificationProblem,
};
use dpv_lp::{
    BranchAndBoundBackend, ColdBranchAndBoundBackend, MilpStatus, SolveStats, SolverBackend,
};
use dpv_monitor::ActivationEnvelope;
use dpv_scenegen::{DatasetBundle, GeneratorConfig, PropertyKind};
use dpv_tensor::Vector;

fn bench_e8(c: &mut Criterion) {
    let outcome = quick_outcome();
    let scene = bench_config().scene;
    let generator = GeneratorConfig {
        scene,
        samples: 150,
        seed: 11,
        threads: 1,
    };
    let bundle = DatasetBundle::generate(&generator);
    let mut rng = StdRng::seed_from_u64(17);
    let examples = dpv_scenegen::property_examples(&scene, PropertyKind::BendsRight, 160, &mut rng);

    // E6 cut-4 setup, as in E7: widened envelope at the earlier cut → 20+
    // unstable ReLUs and a genuine integrality gap.
    let cut = 4usize;
    let margin = 0.25;
    let characterizer = Characterizer::train(
        InputProperty::new("bends_right", "scene oracle"),
        &outcome.perception,
        cut,
        &examples,
        &CharacterizerConfig::small(),
        &mut rng,
    )
    .expect("characterizer training");
    let envelope =
        ActivationEnvelope::from_inputs(&outcome.perception, cut, &bundle.images, margin)
            .expect("envelope from training activations");
    let (_, tail) = outcome.perception.split_at(cut).expect("split");
    let encoded = encode_verification(
        tail.layers(),
        Some(characterizer.network()),
        &RiskCondition::new("vacuous").output_ge(0, -1e9),
        &StartRegion::Box(envelope.box_only()),
    )
    .expect("encoding");
    let mut bound_milp = encoded.milp.clone();
    bound_milp
        .lp_mut()
        .set_objective(&[(encoded.output_vars[0], 1.0)], false);
    let relaxation = bound_milp.lp().solve();
    let exact = BranchAndBoundBackend.solve(&bound_milp);
    let gap = exact.objective - relaxation.objective;
    println!(
        "e8 setup: {} binaries, relaxation bound {:.4}, exact minimum {:.4}, gap {:.4}",
        encoded.num_binaries, relaxation.objective, exact.objective, gap
    );

    // --- Workload 1: the refutation MILP, cold vs warm -------------------
    // Mid-gap threshold: the root relaxation stays feasible, the MILP is
    // not — proving safety refutes the whole tree.
    let refute_threshold = if gap > 1e-6 {
        relaxation.objective + 0.5 * gap
    } else {
        exact.objective - 0.05
    };
    let refute_risk = RiskCondition::new("steer far left").output_le(0, refute_threshold);
    let refute_milp = {
        let refute_encoded = encode_verification(
            tail.layers(),
            Some(characterizer.network()),
            &refute_risk,
            &StartRegion::Box(envelope.box_only()),
        )
        .expect("encoding");
        refute_encoded.milp
    };
    let engines: [(&str, Box<dyn SolverBackend>); 2] = [
        ("pr2-cold", Box::new(ColdBranchAndBoundBackend)),
        ("warm", Box::new(BranchAndBoundBackend)),
    ];
    println!(
        "{:<28} {:>10} {:>8} {:>8} {:>8} {:>10} {:>9}",
        "e6-cut4-refute", "seconds", "nodes", "warm", "cold", "pivots", "hit-rate"
    );
    for (label, engine) in &engines {
        let start = Instant::now();
        let solution = engine.solve(&refute_milp);
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(solution.status, MilpStatus::Infeasible, "{label}");
        let stats = solution.stats;
        println!(
            "{:<28} {:>10.3} {:>8} {:>8} {:>8} {:>10} {:>8.1}%",
            label,
            seconds,
            stats.nodes_explored,
            stats.warm_solves,
            stats.cold_solves,
            stats.simplex_iterations,
            100.0 * stats.warm_hit_rate()
        );
        if *label == "warm" {
            assert!(
                stats.warm_solves > stats.cold_solves,
                "the refutation tree must solve a warm majority: {stats:?}"
            );
            criterion::report_metric(
                "e8/e6-cut4-refute/warm-hit-permille",
                permille(
                    stats.warm_solves as f64,
                    (stats.warm_solves + stats.cold_solves) as f64,
                ),
            );
        }
    }

    // --- Workload 2: the refinement sweep, PR-2 path vs template+warm ----
    // Risk threshold just above the exact reachable minimum of the widened
    // box: counterexamples exist, and a **zero** realizability tolerance
    // classifies every one of them as spurious — so each forces a split and
    // the sweep fans out over sub-boxes until the split budget is exhausted.
    // With the classification independent of the particular witness, both
    // variants provably traverse the *same* work-list (box verdicts are
    // encoding-equivalent; splits depend only on the boxes), which keeps the
    // comparison apples-to-apples even though the engines may surface
    // different feasible points.
    let references: Vec<Vector> = bundle
        .images
        .iter()
        .map(|image| outcome.perception.activation_at(cut, image))
        .collect();
    let region = envelope.box_only();
    let sweep_risk = RiskCondition::new("steer far left").output_le(0, exact.objective + 0.02);
    let sweep_problem = VerificationProblem::new(
        outcome.perception.clone(),
        cut,
        characterizer.clone(),
        sweep_risk,
    )
    .expect("problem assembly");
    let max_splits = 16usize;

    let run_sweep = |verifier: &RefinementVerifier, backend: &dyn SolverBackend| {
        let start = Instant::now();
        let (verdict, report) = verifier
            .verify_with(&sweep_problem, &region, &references, backend)
            .expect("refinement sweep");
        (start.elapsed().as_secs_f64(), verdict, report)
    };
    let pr2 = RefinementVerifier::new(max_splits, 0.0).without_template();
    let pr3 = RefinementVerifier::new(max_splits, 0.0);

    let (cold_seconds, cold_verdict, cold_report) = run_sweep(&pr2, &ColdBranchAndBoundBackend);
    let (warm_seconds, warm_verdict, warm_report) = run_sweep(&pr3, &BranchAndBoundBackend);
    // The template + warm start must be invisible in the verdict structure
    // and the traversed work-list (the counterexample *witness* inside an
    // inconclusive verdict may legitimately differ between engines).
    assert_eq!(
        std::mem::discriminant(&cold_verdict),
        std::mem::discriminant(&warm_verdict),
        "sweep verdict kinds diverged: {cold_verdict:?} vs {warm_verdict:?}"
    );
    assert_eq!(
        cold_report.verification_calls, warm_report.verification_calls,
        "sweep work-lists diverged"
    );
    assert_eq!(cold_report.splits, warm_report.splits);
    assert_eq!(cold_report.pruned_subregions, warm_report.pruned_subregions);
    let warm_stats: SolveStats = warm_report.solver_stats;
    println!(
        "refine-sweep: {} calls, {} splits | pr2-cold {:.3}s, warm+template {:.3}s ({:.2}x) | \
         warm {}/{} node solves ({:.1}%), {} pivots vs {} cold pivots",
        warm_report.verification_calls,
        warm_report.splits,
        cold_seconds,
        warm_seconds,
        cold_seconds / warm_seconds.max(1e-9),
        warm_stats.warm_solves,
        warm_stats.warm_solves + warm_stats.cold_solves,
        100.0 * warm_stats.warm_hit_rate(),
        warm_stats.simplex_iterations,
        cold_report.solver_stats.simplex_iterations
    );
    assert!(
        warm_stats.warm_solves > warm_stats.cold_solves,
        "the sweep must solve a warm majority of B&B nodes: {warm_stats:?}"
    );
    criterion::report_metric(
        "e8/refine-sweep/warm-hit-permille",
        permille(
            warm_stats.warm_solves as f64,
            (warm_stats.warm_solves + warm_stats.cold_solves) as f64,
        ),
    );

    // --- Timed benchmark entries ----------------------------------------
    let mut group = c.benchmark_group("e8");
    group.sample_size(3);
    for (label, engine) in &engines {
        group.bench_function(BenchmarkId::new("e6-cut4-refute", *label), |b| {
            b.iter(|| {
                let solution = engine.solve(&refute_milp);
                assert_eq!(solution.status, MilpStatus::Infeasible);
                solution.stats.nodes_explored
            })
        });
    }
    let mut sweep_means: Vec<(String, f64)> = Vec::new();
    for (label, verifier, backend) in [
        (
            "pr2-cold",
            &pr2,
            &ColdBranchAndBoundBackend as &dyn SolverBackend,
        ),
        ("warm-template", &pr3, &BranchAndBoundBackend),
    ] {
        let mut samples = Vec::new();
        group.bench_function(BenchmarkId::new("refine-sweep", label), |b| {
            b.iter(|| {
                let (seconds, _, report) = run_sweep(verifier, backend);
                samples.push(seconds);
                report.verification_calls
            })
        });
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        sweep_means.push((label.to_string(), mean));
    }
    group.finish();

    let cold_mean = sweep_means
        .iter()
        .find(|(l, _)| l == "pr2-cold")
        .map(|(_, m)| *m)
        .unwrap_or(cold_seconds);
    let warm_mean = sweep_means
        .iter()
        .find(|(l, _)| l == "warm-template")
        .map(|(_, m)| *m)
        .unwrap_or(warm_seconds);
    let speedup = cold_mean / warm_mean.max(1e-9);
    println!("refine-sweep speedup (cold mean / warm+template mean): {speedup:.2}x");
    criterion::report_metric(
        "e8/refine-sweep/speedup-permille",
        permille(cold_mean, warm_mean),
    );
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);

//! E10: scenario diversity — per-violation-class monitor detection and
//! scenario-family verification over the diverse ODD.
//!
//! The workload runs the end-to-end workflow on [`SceneConfig::diverse`]:
//! every scenario dimension on (occlusion, rain, dashed-vs-solid lanes, the
//! bimodal curvature mix), envelope sharding at k = 4 (the diverse ODD is
//! genuinely multi-modal, so the k-means split is no longer a synthetic
//! curvature artefact), and the scenario-mix stage measuring:
//!
//! * **per-class detection** — for each [`OddViolation`] class, the
//!   fraction of violating frames flagged by the monolithic envelope
//!   monitor and by the sharded monitor on identical frames. The sharded
//!   rate can never be below the monolithic one (union containment); the
//!   per-class split is the point — an aggregate rate would hide a monitor
//!   that is blind to one class but sharp on the others.
//! * **scenario families** — one E1 assume-guarantee verification per
//!   satisfiable [`PropertyKind`] family (envelope built from that family's
//!   scenes alone), the compositional ODD split.
//!
//! Run with `CRITERION_JSON=BENCH_e10.json` for machine-readable results;
//! besides the timing records the file carries one
//! `e10/detection-<class>-permille` and `e10/detection-sharded-<class>-permille`
//! record per violation class, `e10/detection-delta-permille` (mean sharded
//! − monolithic detection across classes) and `e10/families-safe-permille`
//! (fraction of family E1 verdicts that are safe). All of these come from
//! seeded, single-threaded workloads and are gated by `tools/benchgate`
//! against the committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_bench::permille;
use dpv_core::{Workflow, WorkflowConfig};
use dpv_scenegen::{render_scene, DatasetBundle, GeneratorConfig, OddSampler, OddViolation};

fn bench_e10(c: &mut Criterion) {
    // The diverse ODD: occlusion, rain and dashed lanes on, plus a strong
    // bimodal curvature mix so the cut-layer activations cluster.
    let mut scene = dpv_scenegen::SceneConfig::diverse();
    scene.curvature_mix = 0.8;

    // --- Timed: diverse dataset generation throughput ---------------------
    let generator = GeneratorConfig {
        scene,
        samples: 150,
        seed: 11,
        threads: 1,
    };
    let mut group = c.benchmark_group("e10");
    group.sample_size(3);
    group.bench_function(BenchmarkId::new("generate", "diverse-150"), |b| {
        b.iter(|| DatasetBundle::generate(&generator).len())
    });
    group.finish();

    // --- The end-to-end workflow with sharding and the scenario stage -----
    let outcome = Workflow::new(WorkflowConfig {
        scene,
        training_samples: 150,
        characterizer_samples: 150,
        validation_samples: 80,
        perception_epochs: 10,
        envelope_shards: 4,
        scenario_samples: 60,
        violation_samples: 150,
        ..WorkflowConfig::small()
    })
    .run()
    .expect("benchmark workflow must succeed");
    let scenario = outcome
        .scenario
        .as_ref()
        .expect("the scenario stage is enabled");

    // Families: one E1 verification per satisfiable property class — under
    // the diverse ODD that is every property, including the new occlusion /
    // rain / dashed families.
    assert_eq!(
        scenario.families.len(),
        dpv_scenegen::PropertyKind::ALL.len(),
        "every scenario family must be satisfiable under the diverse ODD"
    );
    println!("e10 scenario families:");
    for family in &scenario.families {
        println!(
            "  {:<16} ({} scenes)  {}",
            family.property.name(),
            family.samples,
            family.outcome.summary()
        );
    }
    let safe = scenario
        .families
        .iter()
        .filter(|f| f.outcome.verdict.is_safe())
        .count();
    criterion::report_metric(
        "e10/families-safe-permille",
        permille(safe as f64, scenario.families.len() as f64),
    );

    // Per-class detection: the headline table. The sharded monitor must
    // dominate the monolithic one on every class (union containment).
    assert_eq!(scenario.violations.len(), OddViolation::ALL.len());
    println!(
        "e10 detection: {:<20} {:>7} {:>11} {:>9}",
        "class", "frames", "monolithic", "sharded"
    );
    let mut delta_sum = 0.0f64;
    for detection in &scenario.violations {
        let sharded_rate = detection
            .sharded_rate()
            .expect("sharded stage enabled at k = 4");
        let monolithic_rate = detection.monolithic_rate();
        println!(
            "e10 detection: {:<20} {:>7} {:>11.3} {:>9.3}",
            detection.class.name(),
            detection.frames,
            monolithic_rate,
            sharded_rate
        );
        assert!(
            sharded_rate >= monolithic_rate,
            "{}: sharded detection below monolithic",
            detection.class
        );
        delta_sum += sharded_rate - monolithic_rate;
        criterion::report_metric(
            format!("e10/detection-{}-permille", detection.class.name()),
            permille(monolithic_rate, 1.0),
        );
        criterion::report_metric(
            format!("e10/detection-sharded-{}-permille", detection.class.name()),
            permille(sharded_rate, 1.0),
        );
    }
    criterion::report_metric(
        "e10/detection-delta-permille",
        permille(delta_sum / scenario.violations.len() as f64, 1.0),
    );

    // --- Timed: per-frame violation sampling + rendering + monitor check --
    let monitor = dpv_monitor::RuntimeMonitor::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.envelope.clone(),
    )
    .expect("monitor over the workflow envelope");
    let sampler = OddSampler::new(scene);
    let mut rng = StdRng::seed_from_u64(47);
    let mut group = c.benchmark_group("e10");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::new("violation-frame", "sample-render-check"),
        |b| {
            b.iter(|| {
                let scene_params = sampler.sample_violation(OddViolation::Downpour, &mut rng);
                let image = render_scene(&scene_params, &scene);
                monitor.check(&image).is_in_odd()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);

//! E7: scaling of the parallel branch-and-bound backend and the concurrent
//! refinement work-list.
//!
//! Three workloads, spanning the tree sizes verification actually produces:
//!
//! * **e6-cut4-refute** — the E6 harness cut at layer 4 (24 ReLU binaries
//!   once the envelope is widened), with the risk threshold placed in the
//!   middle of the integrality gap between the LP-relaxation bound and the
//!   exact reachable minimum. The MILP is infeasible but the root relaxation
//!   is not, so proving safety requires refuting the whole branch-and-bound
//!   tree (hundreds of nodes) — the embarrassingly parallel workload.
//! * **e6-cut6-bound** — exact reachable-output bound computation at the
//!   default close-to-output cut: an optimisation MILP with incumbent
//!   pruning over a small tree.
//! * **e1-provable** — the paper's E1 assume-guarantee query, whose root
//!   relaxation is already infeasible: a single-node solve that measures the
//!   per-query overhead floor (encoding + one LP) of every engine.
//!
//! Each workload compares the PR-1 baseline (which cloned the whole LP per
//! node, kept as [`dpv_bench::CloningBranchAndBoundBackend`]), the clone-free
//! serial engine, and the parallel backend at 1/2/4/8 workers; a final
//! section dispatches the refinement work-list serially and in parallel.
//!
//! Run with `CRITERION_JSON=BENCH_e7.json` to capture machine-readable
//! results. The emitted file includes `host_cpus`: on a single-core host the
//! worker sweep can only measure coordination overhead (the refutation tree
//! must be explored either way), while multi-core hosts see the subtree
//! fan-out as wall-clock speedup. CI's bench-smoke step records the numbers
//! either way, with reduced samples via `CRITERION_SAMPLE_SIZE`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_absint::{AbstractDomain, BoxDomain};
use dpv_bench::{bench_config, permille, quick_outcome, CloningBranchAndBoundBackend};
use dpv_core::{
    encode_verification, AssumeGuarantee, Characterizer, CharacterizerConfig, InputProperty,
    ParallelRefinementConfig, RefinementVerifier, RiskCondition, StartRegion, VerificationProblem,
    VerificationStrategy,
};
use dpv_lp::{BranchAndBoundBackend, MilpProblem, ParallelBranchAndBoundBackend, SolverBackend};
use dpv_monitor::ActivationEnvelope;
use dpv_scenegen::{DatasetBundle, GeneratorConfig, PropertyKind};
use dpv_tensor::Vector;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The engines every workload compares: the PR-1 cloning baseline, the
/// clone-free serial default, and the parallel worker sweep.
fn engines() -> Vec<(String, Box<dyn SolverBackend>)> {
    let mut engines: Vec<(String, Box<dyn SolverBackend>)> = vec![
        (
            "baseline-pr1/1".into(),
            Box::new(CloningBranchAndBoundBackend),
        ),
        ("serial/1".into(), Box::new(BranchAndBoundBackend)),
    ];
    for workers in WORKER_SWEEP {
        engines.push((
            format!("parallel/{workers}"),
            Box::new(ParallelBranchAndBoundBackend::new(workers)),
        ));
    }
    engines
}

/// One benchmarked verification query.
enum Workload {
    /// Full verification through the seam (`verify_with`).
    Verify(VerificationProblem, VerificationStrategy),
    /// A raw MILP handed straight to the backend (bound computation).
    Milp(MilpProblem),
}

impl Workload {
    fn run(&self, backend: &dyn SolverBackend) -> (f64, usize) {
        match self {
            Workload::Verify(problem, strategy) => {
                let outcome = problem
                    .verify_with(strategy, backend)
                    .expect("verification");
                assert!(
                    outcome.verdict.is_safe(),
                    "refutation workload must prove safety"
                );
                (outcome.solve_seconds, outcome.nodes_explored)
            }
            Workload::Milp(milp) => {
                let start = Instant::now();
                let solution = backend.solve(milp);
                assert_eq!(solution.status, dpv_lp::MilpStatus::Optimal);
                (start.elapsed().as_secs_f64(), solution.stats.nodes_explored)
            }
        }
    }
}

fn bench_e7(c: &mut Criterion) {
    let outcome = quick_outcome();
    let scene = bench_config().scene;
    let generator = GeneratorConfig {
        scene,
        samples: 150,
        seed: 11,
        threads: 1,
    };
    let bundle = DatasetBundle::generate(&generator);
    let mut rng = StdRng::seed_from_u64(17);
    let examples = dpv_scenegen::property_examples(&scene, PropertyKind::BendsRight, 160, &mut rng);

    let mut workloads: Vec<(String, Workload)> = Vec::new();

    // e6-cut4-refute: widened envelope at the earlier cut → 20+ unstable
    // ReLUs and a genuine integrality gap to place the threshold in.
    {
        let cut = 4usize;
        let margin = 0.25;
        let characterizer = Characterizer::train(
            InputProperty::new("bends_right", "scene oracle"),
            &outcome.perception,
            cut,
            &examples,
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .expect("characterizer training");
        let envelope =
            ActivationEnvelope::from_inputs(&outcome.perception, cut, &bundle.images, margin)
                .expect("envelope from training activations");
        let (_, tail) = outcome.perception.split_at(cut).expect("split");
        // Structural encoding (vacuous risk) to measure the integrality gap
        // of the reachable-minimum objective.
        let encoded = encode_verification(
            tail.layers(),
            Some(characterizer.network()),
            &RiskCondition::new("vacuous").output_ge(0, -1e9),
            &StartRegion::Box(envelope.box_only()),
        )
        .expect("encoding");
        let mut bound_milp = encoded.milp.clone();
        bound_milp
            .lp_mut()
            .set_objective(&[(encoded.output_vars[0], 1.0)], false);
        let relaxation = bound_milp.lp().solve();
        let exact = BranchAndBoundBackend.solve(&bound_milp);
        let gap = exact.objective - relaxation.objective;
        println!(
            "e6-cut4 setup: {} binaries, relaxation bound {:.4}, exact minimum {:.4}, gap {:.4}",
            encoded.num_binaries, relaxation.objective, exact.objective, gap
        );
        // Mid-gap threshold: the root relaxation stays feasible, the MILP is
        // not — proving safety costs a full refutation tree. (Degenerates to
        // a root-infeasible query if the gap ever closes.)
        let threshold = if gap > 1e-6 {
            relaxation.objective + 0.5 * gap
        } else {
            exact.objective - 0.05
        };
        let risk = RiskCondition::new("steer far left").output_le(0, threshold);
        let problem =
            VerificationProblem::new(outcome.perception.clone(), cut, characterizer, risk)
                .expect("problem assembly");
        let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope,
            use_difference_constraints: false,
        });
        workloads.push(("e6-cut4-refute".into(), Workload::Verify(problem, strategy)));
    }

    // e6-cut6-bound: exact output bound at the default cut (small tree with
    // incumbent pruning).
    {
        let cut = outcome.cut_layer;
        let envelope =
            ActivationEnvelope::from_inputs(&outcome.perception, cut, &bundle.images, 0.0)
                .expect("envelope from training activations");
        let (_, tail) = outcome.perception.split_at(cut).expect("split");
        let encoded = encode_verification(
            tail.layers(),
            Some(outcome.bend_characterizer.network()),
            &RiskCondition::new("vacuous").output_ge(0, -1e9),
            &StartRegion::Box(envelope.box_only()),
        )
        .expect("encoding");
        let mut bound_milp = encoded.milp;
        bound_milp
            .lp_mut()
            .set_objective(&[(encoded.output_vars[0], 1.0)], false);
        workloads.push(("e6-cut6-bound".into(), Workload::Milp(bound_milp)));
    }

    // e1-provable: the paper's far-left query; the relaxation refutes it at
    // the root, so this measures each engine's per-query overhead floor.
    {
        let (_, tail) = outcome
            .perception
            .split_at(outcome.cut_layer)
            .expect("split");
        let lower = outcome
            .envelope
            .box_only()
            .propagate(tail.layers())
            .to_box()[0]
            .lo;
        let risk = RiskCondition::new("steer far left").output_le(0, lower - 0.05);
        let problem = VerificationProblem::new(
            outcome.perception.clone(),
            outcome.cut_layer,
            outcome.bend_characterizer.clone(),
            risk,
        )
        .expect("problem assembly");
        let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope: outcome.envelope.clone(),
            use_difference_constraints: true,
        });
        workloads.push(("e1-provable".into(), Workload::Verify(problem, strategy)));
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("=== E7: parallel scaling (host has {host_cpus} CPUs) ===");
    println!(
        "{:<16} {:<28} {:>10} {:>10} {:>12}",
        "workload", "backend", "seconds", "nodes", "nodes/sec"
    );
    for (label, workload) in &workloads {
        for (_, engine) in &engines() {
            let (seconds, nodes) = workload.run(engine.as_ref());
            println!(
                "{:<16} {:<28} {:>10.3} {:>10} {:>12.0}",
                label,
                engine.name(),
                seconds,
                nodes,
                nodes as f64 / seconds.max(1e-9)
            );
        }
    }

    // On a multi-core host, turn the worker sweep on the embarrassingly
    // parallel refutation workload into wall-clock speedup records: serial
    // mean ÷ parallel mean, per worker count that fits the host. These rows
    // are deliberately absent from the committed single-core baseline
    // (`host_cpus: 1` in `BENCH_e7.json`), where the sweep can only measure
    // coordination overhead; a multi-core CI profile records them so the
    // subtree fan-out shows up as a gated metric the first time a multi-core
    // baseline is committed.
    if host_cpus > 1 {
        let (label, refute) = &workloads[0];
        let reps = 3usize;
        let measure = |backend: &dyn SolverBackend| {
            let mut total = 0.0;
            for _ in 0..reps {
                let start = Instant::now();
                refute.run(backend);
                total += start.elapsed().as_secs_f64();
            }
            total / reps as f64
        };
        let serial_mean = measure(&BranchAndBoundBackend);
        for workers in WORKER_SWEEP.iter().copied().filter(|&n| n > 1) {
            let parallel_mean = measure(&ParallelBranchAndBoundBackend::new(workers));
            let speedup = permille(serial_mean, parallel_mean);
            println!(
                "{label} multicore: serial {serial_mean:.3}s vs {workers} workers \
                 {parallel_mean:.3}s ({:.2}x)",
                serial_mean / parallel_mean.max(1e-9)
            );
            criterion::report_metric(format!("e7/parallel-speedup-{workers}-permille"), speedup);
            // Lenient self-check: with real cores available, the parallel
            // backend must not be pathologically slower than the serial one
            // (CI runners jitter, so the floor is loose).
            assert!(
                speedup >= 500,
                "parallel/{workers} was more than 2x slower than serial on a \
                 {host_cpus}-core host ({speedup} permille)"
            );
        }
    }

    let mut group = c.benchmark_group("e7");
    group.sample_size(5);
    for (label, workload) in &workloads {
        for (engine_id, engine) in engines() {
            group.bench_function(BenchmarkId::new(label.clone(), engine_id), |b| {
                b.iter(|| workload.run(engine.as_ref()))
            });
        }
    }

    // Refinement work-list dispatch, serial vs parallel, on the trained
    // harness: a box region around the recorded activations with a reachable
    // risk threshold produces a genuine multi-box work-list (spurious corner
    // counterexamples force splits).
    let references: Vec<Vector> = bundle
        .images
        .iter()
        .map(|image| outcome.perception.activation_at(outcome.cut_layer, image))
        .collect();
    let region = BoxDomain::from_samples(&references);
    let (_, tail) = outcome
        .perception
        .split_at(outcome.cut_layer)
        .expect("split");
    let reachable_lower = region.propagate(tail.layers()).to_box()[0].lo;
    let refine_risk = RiskCondition::new("steer left").output_le(0, reachable_lower + 0.01);
    let refine_problem = VerificationProblem::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.bend_characterizer.clone(),
        refine_risk,
    )
    .expect("problem assembly");
    for workers in [1usize, 4] {
        let verifier = if workers == 1 {
            RefinementVerifier::new(64, 0.05)
        } else {
            RefinementVerifier::new(64, 0.05)
                .with_parallelism(ParallelRefinementConfig::new(workers))
        };
        let start = Instant::now();
        let (verdict, report) = verifier
            .verify(&refine_problem, &region, &references)
            .expect("refinement");
        let seconds = start.elapsed().as_secs_f64();
        println!(
            "refinement workers={workers}: safe={} in {seconds:.3}s, {} calls, {} nodes ({:.0} nodes/sec)",
            verdict.is_safe(),
            report.verification_calls,
            report.solver_stats.nodes_explored,
            report.solver_stats.nodes_explored as f64 / seconds.max(1e-9)
        );
        group.bench_with_input(
            BenchmarkId::new("refinement/workers", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    verifier
                        .verify(&refine_problem, &region, &references)
                        .expect("refinement")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);

//! E11: batched monitor & propagation throughput — the SIMD-friendly
//! structure-of-arrays pass over frames and refinement siblings.
//!
//! The workload is the E9 sharded-monitor setup (cut-4 envelope over the
//! multi-modal `curvature_mix` ODD, `k = 4` shards), measured three ways:
//!
//! * **monitor batching** — a stream of frames classified one call per
//!   frame (`check`) versus one call per stream (`check_frames`). The
//!   batched path runs one matrix–matrix forward pass per layer and a
//!   fused min/max containment sweep over the contiguous SoA envelope
//!   (64-frame chunks with an early-exit bitmask), so the speedup is pure
//!   layout/fusion — no extra cores involved. Verdict parity with the
//!   scalar path is asserted *before* anything is timed and reported as
//!   `e11/batch-parity-permille` (exactly 1000 or the gate fails: the
//!   batch sweep must be bit-identical to per-frame monitoring, violation
//!   lists included).
//! * **frames/sec** — the same measurements re-expressed as throughput
//!   records (`*-frames-per-sec-permille`, value = frames·1000/s). These
//!   are machine-speed dependent, so `tools/benchgate` gives them the
//!   lenient higher-is-better rule rather than the tight ratio rules.
//! * **propagation batching** — interval bound propagation for a
//!   generation of refinement siblings through the cached
//!   [`EncodingTemplate`] layers: per-sibling `region_bounds` versus one
//!   SoA `region_bounds_batch` pass. This is the precompute the
//!   generational refinement loop performs before fanning out to workers.
//!
//! Run with `CRITERION_JSON=BENCH_e11.json` for machine-readable results.
//! The committed baseline was produced on a **single-core** container
//! (`host_cpus: 1` in the JSON), which is the point: every speedup below
//! is batching, not parallelism. The `e11/monitor-batch-speedup-permille`
//! acceptance floor is 2000 (≥ 2×).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_absint::{AbstractDomain, BoxDomain, Interval};
use dpv_bench::permille;
use dpv_core::{
    Characterizer, CharacterizerConfig, EncodingTemplate, InputProperty, RiskCondition,
    StartRegion, Workflow, WorkflowConfig,
};
use dpv_monitor::{ActivationEnvelope, MonitorVerdict, RuntimeMonitor};
use dpv_scenegen::{render_scene, DatasetBundle, GeneratorConfig, OddSampler, PropertyKind};
use dpv_shard::{ShardConfig, ShardedEnvelope, ShardedMonitor};
use dpv_tensor::Vector;

/// Frames per measured stream — a few SoA chunks plus a ragged tail, so the
/// 64-lane bitmask path and the remainder path are both on the clock.
const STREAM: usize = 200;

/// Mean seconds over `reps` runs of `routine`.
fn mean_seconds<O>(reps: usize, mut routine: impl FnMut() -> O) -> f64 {
    criterion::black_box(routine());
    let mut total = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        criterion::black_box(routine());
        total += start.elapsed().as_secs_f64();
    }
    total / reps as f64
}

/// Splits `root` into `2^splits` sibling sub-boxes by bisecting the widest
/// dimensions — the shape one refinement generation hands to the batched
/// propagation pass.
fn sibling_boxes(root: &BoxDomain, splits: usize) -> Vec<BoxDomain> {
    let mut generation = vec![root.clone()];
    for _ in 0..splits {
        generation = generation
            .iter()
            .flat_map(|b| {
                let bounds = b.bounds();
                let (dim, _) = bounds
                    .iter()
                    .enumerate()
                    .max_by(|(_, x), (_, y)| {
                        (x.hi - x.lo).partial_cmp(&(y.hi - y.lo)).expect("finite")
                    })
                    .expect("non-empty box");
                let mid = 0.5 * (bounds[dim].lo + bounds[dim].hi);
                let mut lo_half = bounds.to_vec();
                let mut hi_half = bounds.to_vec();
                lo_half[dim] = Interval::new(bounds[dim].lo, mid);
                hi_half[dim] = Interval::new(mid, bounds[dim].hi);
                [
                    BoxDomain::from_intervals(lo_half),
                    BoxDomain::from_intervals(hi_half),
                ]
            })
            .collect();
    }
    generation
}

fn bench_e11(c: &mut Criterion) {
    // E9 workload: multi-modal ODD, cut-4 envelope, k = 4 shards.
    let mut scene = dpv_scenegen::SceneConfig::small();
    scene.curvature_mix = 0.8;
    let outcome = Workflow::new(WorkflowConfig {
        scene,
        training_samples: 150,
        characterizer_samples: 150,
        validation_samples: 80,
        perception_epochs: 10,
        ..WorkflowConfig::small()
    })
    .run()
    .expect("benchmark setup workflow must succeed");
    let generator = GeneratorConfig {
        scene,
        samples: 150,
        seed: 11,
        threads: 1,
    };
    let bundle = DatasetBundle::generate(&generator);

    let cut = 4usize;
    let margin = 0.25;
    let monolithic =
        ActivationEnvelope::from_inputs(&outcome.perception, cut, &bundle.images, margin)
            .expect("envelope from training activations");
    let sharded = ShardedEnvelope::from_inputs(
        &outcome.perception,
        cut,
        &bundle.images,
        margin,
        &ShardConfig::fixed(4).with_seed(23),
    )
    .expect("k = 4 sharding");
    let mono_monitor = RuntimeMonitor::new(outcome.perception.clone(), cut, monolithic.clone())
        .expect("monolithic monitor");
    let shard_monitor = ShardedMonitor::new(outcome.perception.clone(), cut, sharded.clone())
        .expect("sharded monitor");

    // A frame stream mixing in- and out-of-ODD scenes, as a deployed
    // monitor would see.
    let sampler = OddSampler::new(scene);
    let mut frame_rng = StdRng::seed_from_u64(29);
    let frames: Vec<Vector> = (0..STREAM)
        .map(|i| {
            let scene_desc = if i % 3 == 0 {
                sampler.sample_out_of_odd(&mut frame_rng)
            } else {
                sampler.sample_in_odd(&mut frame_rng)
            };
            render_scene(&scene_desc, &scene)
        })
        .collect();

    // --- Parity before anything is timed ---------------------------------
    let mono_batched = mono_monitor.check_frames(&frames);
    let mono_scalar: Vec<MonitorVerdict> = frames.iter().map(|f| mono_monitor.check(f)).collect();
    let shard_batched = shard_monitor.check_frames(&frames);
    let shard_scalar: Vec<MonitorVerdict> = frames.iter().map(|f| shard_monitor.check(f)).collect();
    let parity = mono_batched == mono_scalar && shard_batched == shard_scalar;
    assert!(
        parity,
        "batched verdicts must be identical to per-frame verdicts"
    );
    let flagged = mono_batched.iter().filter(|v| !v.is_in_odd()).count();
    println!(
        "e11 setup: {STREAM} frames, {} flagged out-of-ODD monolithically, {} by the shard union",
        flagged,
        shard_batched.iter().filter(|v| !v.is_in_odd()).count()
    );
    assert!(
        flagged > 0 && flagged < STREAM,
        "the stream must exercise both verdicts"
    );
    criterion::report_metric("e11/batch-parity-permille", u128::from(parity) * 1000);
    mono_monitor.reset();
    shard_monitor.reset();

    // --- Monitor throughput: per-frame vs batched -------------------------
    let reps = 30usize;
    let mono_scalar_s = mean_seconds(reps, || {
        frames
            .iter()
            .filter(|f| mono_monitor.check(f).is_in_odd())
            .count()
    });
    let mono_batch_s = mean_seconds(reps, || {
        mono_monitor
            .check_frames(&frames)
            .iter()
            .filter(|v| v.is_in_odd())
            .count()
    });
    let shard_scalar_s = mean_seconds(reps, || {
        frames
            .iter()
            .filter(|f| shard_monitor.check(f).is_in_odd())
            .count()
    });
    let shard_batch_s = mean_seconds(reps, || {
        shard_monitor
            .check_frames(&frames)
            .iter()
            .filter(|v| v.is_in_odd())
            .count()
    });
    println!(
        "e11 monitor: monolithic {:.1} µs/frame scalar vs {:.1} µs/frame batched ({:.2}x); \
         sharded {:.1} vs {:.1} µs/frame ({:.2}x)",
        1e6 * mono_scalar_s / STREAM as f64,
        1e6 * mono_batch_s / STREAM as f64,
        mono_scalar_s / mono_batch_s.max(1e-12),
        1e6 * shard_scalar_s / STREAM as f64,
        1e6 * shard_batch_s / STREAM as f64,
        shard_scalar_s / shard_batch_s.max(1e-12),
    );
    criterion::report_metric(
        "e11/monitor-batch-speedup-permille",
        permille(mono_scalar_s, mono_batch_s),
    );
    criterion::report_metric(
        "e11/sharded-batch-speedup-permille",
        permille(shard_scalar_s, shard_batch_s),
    );
    // Throughput records: frames · 1000 / second, gated leniently (they are
    // machine-speed dependent, unlike the ratios above).
    criterion::report_metric(
        "e11/monitor-batch-frames-per-sec-permille",
        permille(STREAM as f64, mono_batch_s),
    );
    criterion::report_metric(
        "e11/sharded-batch-frames-per-sec-permille",
        permille(STREAM as f64, shard_batch_s),
    );

    let mut group = c.benchmark_group("e11");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("monitor-stream", "scalar"), |b| {
        b.iter(|| {
            frames
                .iter()
                .filter(|f| mono_monitor.check(f).is_in_odd())
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("monitor-stream", "batched"), |b| {
        b.iter(|| {
            mono_monitor
                .check_frames(&frames)
                .iter()
                .filter(|v| v.is_in_odd())
                .count()
        })
    });
    group.bench_function(BenchmarkId::new("monitor-stream", "sharded-batched"), |b| {
        b.iter(|| {
            shard_monitor
                .check_frames(&frames)
                .iter()
                .filter(|v| v.is_in_odd())
                .count()
        })
    });

    // --- Sibling bound propagation: scalar vs batched ---------------------
    // The cut-4 template the refinement loop would cache, with the trained
    // characterizer chained on; one generation = 32 sibling sub-boxes.
    let mut rng = StdRng::seed_from_u64(17);
    let examples = dpv_scenegen::property_examples(&scene, PropertyKind::BendsRight, 160, &mut rng);
    let characterizer = Characterizer::train(
        InputProperty::new("bends_right", "scene oracle"),
        &outcome.perception,
        cut,
        &examples,
        &CharacterizerConfig::small(),
        &mut rng,
    )
    .expect("characterizer training");
    let (_, tail) = outcome.perception.split_at(cut).expect("split");
    let root_box = monolithic.box_only();
    let template = EncodingTemplate::build(
        tail.layers(),
        Some(characterizer.network()),
        &RiskCondition::new("steer far left").output_le(0, -1e3),
        &StartRegion::Box(root_box.clone()),
    )
    .expect("template build");
    let generation = sibling_boxes(&root_box, 5);
    let refs: Vec<&BoxDomain> = generation.iter().collect();
    println!(
        "e11 propagation: generation of {} sibling boxes, {} tail layers",
        generation.len(),
        tail.layers().len()
    );

    let batched_bounds = template.region_bounds_batch(&refs).expect("batched bounds");
    for (sub_box, batched) in generation.iter().zip(&batched_bounds) {
        let scalar = template
            .region_bounds(&StartRegion::Box(sub_box.clone()))
            .expect("scalar bounds");
        assert_eq!(batched, &scalar, "batched propagation must be bit-exact");
    }

    let prop_reps = 20usize;
    let scalar_prop_s = mean_seconds(prop_reps, || {
        generation
            .iter()
            .map(|sub_box| {
                template
                    .region_bounds(&StartRegion::Box(sub_box.clone()))
                    .expect("scalar bounds")
            })
            .collect::<Vec<_>>()
    });
    let batch_prop_s = mean_seconds(prop_reps, || {
        template.region_bounds_batch(&refs).expect("batched bounds")
    });
    println!(
        "e11 propagation: {:.1} µs/box scalar vs {:.1} µs/box batched ({:.2}x)",
        1e6 * scalar_prop_s / generation.len() as f64,
        1e6 * batch_prop_s / generation.len() as f64,
        scalar_prop_s / batch_prop_s.max(1e-12),
    );
    criterion::report_metric(
        "e11/propagation-batch-speedup-permille",
        permille(scalar_prop_s, batch_prop_s),
    );

    group.bench_function(BenchmarkId::new("propagation-generation", "scalar"), |b| {
        b.iter(|| {
            generation
                .iter()
                .map(|sub_box| {
                    template
                        .region_bounds(&StartRegion::Box(sub_box.clone()))
                        .expect("scalar bounds")
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function(BenchmarkId::new("propagation-generation", "batched"), |b| {
        b.iter(|| template.region_bounds_batch(&refs).expect("batched bounds"))
    });
    group.finish();
}

criterion_group!(benches, bench_e11);
criterion_main!(benches);

//! E5: runtime-monitoring feasibility (footnote 2 / Section V footnote 8).
//!
//! Prints the monitor's in-ODD acceptance and out-of-ODD detection rates,
//! then benchmarks the per-frame cost of (a) the pure envelope containment
//! check on a precomputed activation, (b) the full monitored forward pass,
//! and (c) the unmonitored forward pass for comparison — the monitor's
//! overhead is the difference between (b) and (c).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_bench::{bench_config, trained_outcome};
use dpv_monitor::RuntimeMonitor;
use dpv_scenegen::{render_scene, OddSampler};

fn bench_e5(c: &mut Criterion) {
    let outcome = trained_outcome();
    let scene = bench_config().scene;
    let monitor = RuntimeMonitor::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.envelope.clone(),
    )
    .expect("monitor construction");

    let sampler = OddSampler::new(scene);
    let mut rng = StdRng::seed_from_u64(5);
    let in_odd: Vec<_> = (0..200)
        .map(|_| render_scene(&sampler.sample_in_odd(&mut rng), &scene))
        .collect();
    let out_odd: Vec<_> = (0..200)
        .map(|_| render_scene(&sampler.sample_out_of_odd(&mut rng), &scene))
        .collect();

    let accepted = in_odd
        .iter()
        .filter(|x| monitor.check(x).is_in_odd())
        .count();
    let flagged = out_odd
        .iter()
        .filter(|x| !monitor.check(x).is_in_odd())
        .count();
    println!(
        "=== E5: runtime monitor (envelope dim {}, {} samples) ===",
        outcome.envelope.dim(),
        outcome.envelope.sample_count()
    );
    println!(
        "  in-ODD acceptance:      {:.1} %",
        100.0 * accepted as f64 / in_odd.len() as f64
    );
    println!(
        "  out-of-ODD detection:   {:.1} %",
        100.0 * flagged as f64 / out_odd.len() as f64
    );

    let activation = monitor.activation(&in_odd[0]);
    let frame = in_odd[0].clone();

    let mut group = c.benchmark_group("e5");
    group.bench_function("containment_check_only", |b| {
        b.iter(|| monitor.classify(&activation))
    });
    group.bench_function("monitored_frame", |b| b.iter(|| monitor.check(&frame)));
    group.bench_function("unmonitored_forward", |b| {
        b.iter(|| outcome.perception.forward(&frame))
    });
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);

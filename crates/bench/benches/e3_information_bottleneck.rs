//! E3: characterizer learnability by property — the information-bottleneck
//! effect.
//!
//! Prints held-out accuracy for every scene property when the characterizer
//! is attached to the close-to-output cut layer (output-related properties
//! stay accurate; unrelated ones degrade towards coin flipping), then
//! benchmarks characterizer training and batch inference.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_bench::quick_outcome;
use dpv_core::{Characterizer, CharacterizerConfig, InputProperty};
use dpv_scenegen::{property_examples, PropertyKind, SceneConfig};

fn bench_e3(c: &mut Criterion) {
    let outcome = quick_outcome();
    // The diverse ODD keeps every property — including the occlusion, rain
    // and dashed-lane scenario classes — satisfiable for balanced example
    // generation; its image geometry matches the training configuration.
    let scene = SceneConfig::diverse();
    let cut = outcome.cut_layer;
    let config = CharacterizerConfig::small();
    let mut rng = StdRng::seed_from_u64(31);

    println!("=== E3: held-out characterizer accuracy at the close-to-output layer ===");
    for property in PropertyKind::ALL {
        let train = property_examples(&scene, property, 200, &mut rng);
        let test = property_examples(&scene, property, 150, &mut rng);
        let characterizer = Characterizer::train(
            InputProperty::new(property.name(), "scene-oracle property"),
            &outcome.perception,
            cut,
            &train,
            &config,
            &mut rng,
        )
        .expect("characterizer training");
        let accuracy = characterizer.accuracy(&outcome.perception, &test);
        println!(
            "  {:<20} accuracy {:.3}   ({})",
            property.name(),
            accuracy,
            if property.is_output_related() {
                "output-related"
            } else {
                "output-unrelated"
            }
        );
    }

    let train = property_examples(&scene, PropertyKind::BendsRight, 200, &mut rng);
    let test = property_examples(&scene, PropertyKind::BendsRight, 150, &mut rng);
    let trained = Characterizer::train(
        InputProperty::new("bends_right", "bench"),
        &outcome.perception,
        cut,
        &train,
        &config,
        &mut rng,
    )
    .expect("characterizer training");

    let mut group = c.benchmark_group("e3");
    group.sample_size(10);
    group.bench_function("train_characterizer", |b| {
        b.iter(|| {
            let mut inner_rng = StdRng::seed_from_u64(99);
            Characterizer::train(
                InputProperty::new("bends_right", "bench"),
                &outcome.perception,
                cut,
                &train,
                &config,
                &mut inner_rng,
            )
            .expect("characterizer training")
        })
    });
    group.bench_function("evaluate_characterizer", |b| {
        b.iter(|| trained.accuracy(&outcome.perception, &test))
    });
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);

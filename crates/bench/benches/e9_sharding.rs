//! E9: envelope sharding — cluster-partitioned verification and monitoring
//! versus the monolithic envelope.
//!
//! The workload is the E6 cut-4 setup (widened envelope at the earlier cut,
//! 20+ unstable ReLUs) over a **deliberately multi-modal** dataset: the
//! scene generator's `curvature_mix` knob draws most scenes from a bimodal
//! straight-or-tight-curve distribution, so the cut-layer activations
//! cluster and one octagon over all of them is loose. Three measurements:
//!
//! * **verify** — the gap-calibrated refutation proof (risk threshold in
//!   the middle of the monolithic integrality gap, so safety is provable
//!   but needs a real branch-and-bound tree), solved monolithically, with
//!   `k = 1` sharding (must be verdict-identical and time-comparable — the
//!   sharded driver degenerates to the monolithic MILP) and with `k = 4`
//!   sharding (four tighter MILPs, each stabilising more ReLU phases; the
//!   headline speedup).
//! * **volume** — the shard union's box volume relative to the monolithic
//!   envelope (`< 1` on this workload: the shards cut away the empty space
//!   between the activation modes).
//! * **monitor** — out-of-ODD detection of the sharded monitor versus the
//!   monolithic one on the same frames. The union is a subset of the single
//!   octagon, so detection can only rise; the delta is the tightening win.
//!   The sharded monitor must still accept every training frame (the
//!   union-containment invariant).
//!
//! Run with `CRITERION_JSON=BENCH_e9.json` for machine-readable results;
//! besides the timing records the file carries
//! `e9/shard-speedup-permille` (monolithic mean ÷ k = 4 sharded mean ×
//! 1000), `e9/k1-parity-permille` (monolithic ÷ k = 1), `e9/volume-ratio-
//! permille` and `e9/detection-delta-permille`. Single-threaded throughout
//! (the shard dispatch composes with worker threads, but the comparison
//! isolates the tightening effect).
//!
//! **Reading the parity metric**: the contract is a ±5% *band* around
//! exact parity (1000‰), not exact parity — the degenerate k = 1 sharding
//! runs the same MILP through a thin dispatch layer, so small deviations
//! in either direction are noise. A value *above* 1000 means k = 1 is
//! *slower* than the monolithic path (the committed baseline of 1007 ⇒
//! 0.7% slower), below 1000 means faster. `tools/benchgate` enforces the
//! [950, 1050] band in CI.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_bench::permille;
use dpv_core::{
    encode_verification, AssumeGuarantee, Characterizer, CharacterizerConfig, InputProperty,
    RiskCondition, ShardedVerificationConfig, StartRegion, VerificationProblem,
    VerificationStrategy, Workflow, WorkflowConfig,
};
use dpv_lp::{BranchAndBoundBackend, SolverBackend};
use dpv_monitor::{ActivationEnvelope, RuntimeMonitor};
use dpv_scenegen::{render_scene, DatasetBundle, GeneratorConfig, OddSampler, PropertyKind};
use dpv_shard::{ShardConfig, ShardedEnvelope, ShardedMonitor};

fn bench_e9(c: &mut Criterion) {
    // Multi-modal ODD: 80% of the scenes are either straight or tight
    // curves, so cut-layer activations form clusters.
    let mut scene = dpv_scenegen::SceneConfig::small();
    scene.curvature_mix = 0.8;
    let outcome = Workflow::new(WorkflowConfig {
        scene,
        training_samples: 150,
        characterizer_samples: 150,
        validation_samples: 80,
        perception_epochs: 10,
        ..WorkflowConfig::small()
    })
    .run()
    .expect("benchmark setup workflow must succeed");

    let generator = GeneratorConfig {
        scene,
        samples: 150,
        seed: 11,
        threads: 1,
    };
    let bundle = DatasetBundle::generate(&generator);
    let mut rng = StdRng::seed_from_u64(17);
    let examples = dpv_scenegen::property_examples(&scene, PropertyKind::BendsRight, 160, &mut rng);

    // E6 cut-4 setup (as in E7/E8): widened envelope at the earlier cut →
    // 20+ unstable ReLUs and genuine branch-and-bound trees.
    let cut = 4usize;
    let margin = 0.25;
    let characterizer = Characterizer::train(
        InputProperty::new("bends_right", "scene oracle"),
        &outcome.perception,
        cut,
        &examples,
        &CharacterizerConfig::small(),
        &mut rng,
    )
    .expect("characterizer training");
    let monolithic =
        ActivationEnvelope::from_inputs(&outcome.perception, cut, &bundle.images, margin)
            .expect("envelope from training activations");
    let shard_seed = 23u64;
    let sharded_k1 = ShardedEnvelope::from_inputs(
        &outcome.perception,
        cut,
        &bundle.images,
        margin,
        &ShardConfig::fixed(1).with_seed(shard_seed),
    )
    .expect("k = 1 sharding");
    let sharded_k4 = ShardedEnvelope::from_inputs(
        &outcome.perception,
        cut,
        &bundle.images,
        margin,
        &ShardConfig::fixed(4).with_seed(shard_seed),
    )
    .expect("k = 4 sharding");
    assert_eq!(sharded_k1.merged(), monolithic, "k = 1 must reproduce S̃");

    // --- Volume: the shard union covers strictly less than the box -------
    let volume_ratio = sharded_k4.box_volume_ratio(&monolithic);
    println!(
        "e9 setup: {} shards (sizes {:?}), union/monolithic box volume {:.4}",
        sharded_k4.shard_count(),
        sharded_k4
            .shards()
            .iter()
            .map(|s| s.sample_count())
            .collect::<Vec<_>>(),
        volume_ratio
    );
    assert!(
        volume_ratio < 1.0,
        "the shard union must be strictly tighter on the multi-modal data \
         (got ratio {volume_ratio:.4})"
    );
    criterion::report_metric("e9/volume-ratio-permille", permille(volume_ratio, 1.0));

    // --- Gap calibration: a provable-but-nontrivial refutation risk ------
    // Minimise output0 over the monolithic octagon; a threshold in the
    // middle of the integrality gap keeps the root relaxation feasible
    // while the MILP is not, so the proof explores a real tree.
    let (_, tail) = outcome.perception.split_at(cut).expect("split");
    let encoded = encode_verification(
        tail.layers(),
        Some(characterizer.network()),
        &RiskCondition::new("vacuous").output_ge(0, -1e9),
        &StartRegion::Octagon(monolithic.octagon().clone()),
    )
    .expect("encoding");
    let mut bound_milp = encoded.milp.clone();
    bound_milp
        .lp_mut()
        .set_objective(&[(encoded.output_vars[0], 1.0)], false);
    let relaxation = bound_milp.lp().solve();
    let exact = BranchAndBoundBackend.solve(&bound_milp);
    let gap = exact.objective - relaxation.objective;
    let threshold = if gap > 1e-6 {
        relaxation.objective + 0.5 * gap
    } else {
        exact.objective - 0.05
    };
    println!(
        "e9 calibration: {} binaries, relaxation {:.4}, exact {:.4}, threshold {:.4}",
        encoded.num_binaries, relaxation.objective, exact.objective, threshold
    );
    let risk = RiskCondition::new("steer far left").output_le(0, threshold);
    let problem =
        VerificationProblem::new(outcome.perception.clone(), cut, characterizer.clone(), risk)
            .expect("problem assembly");
    let monolithic_strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope: monolithic.clone(),
        use_difference_constraints: true,
    });
    let shard_config = ShardedVerificationConfig::default();

    // --- One checked pass: verdicts agree, per-shard stats print ---------
    let mono_outcome = problem
        .verify_with(&monolithic_strategy, &BranchAndBoundBackend)
        .expect("monolithic verification");
    assert!(
        mono_outcome.verdict.is_safe(),
        "the calibrated risk must be provably safe: {}",
        mono_outcome.summary()
    );
    let k1_report = problem
        .verify_sharded_with(&sharded_k1, &shard_config, &BranchAndBoundBackend)
        .expect("k = 1 sharded verification");
    assert_eq!(
        k1_report.verdict, mono_outcome.verdict,
        "k = 1 sharding must be verdict-identical to the monolithic path"
    );
    assert_eq!(k1_report.shards[0].num_binaries, mono_outcome.num_binaries);
    let k4_report = problem
        .verify_sharded_with(&sharded_k4, &shard_config, &BranchAndBoundBackend)
        .expect("k = 4 sharded verification");
    assert!(k4_report.verdict.is_safe(), "{}", k4_report.summary());
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>10}",
        "shard", "samples", "binaries", "stable", "nodes"
    );
    for shard in &k4_report.shards {
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>10}",
            format!("k4/{}", shard.shard),
            shard.samples,
            shard.num_binaries,
            shard.stable_relus,
            shard.stats.nodes_explored
        );
        assert!(shard.num_binaries <= mono_outcome.num_binaries);
    }

    // --- Timed benchmark entries ----------------------------------------
    let mut group = c.benchmark_group("e9");
    group.sample_size(3);
    let mut means: Vec<(String, f64)> = Vec::new();
    {
        let mut samples = Vec::new();
        group.bench_function(BenchmarkId::new("verify", "monolithic"), |b| {
            b.iter(|| {
                let start = Instant::now();
                let outcome = problem
                    .verify_with(&monolithic_strategy, &BranchAndBoundBackend)
                    .expect("monolithic verification");
                samples.push(start.elapsed().as_secs_f64());
                assert!(outcome.verdict.is_safe());
                outcome.nodes_explored
            })
        });
        means.push((
            "monolithic".into(),
            samples.iter().sum::<f64>() / samples.len().max(1) as f64,
        ));
    }
    for (label, envelope) in [("sharded-k1", &sharded_k1), ("sharded-k4", &sharded_k4)] {
        let mut samples = Vec::new();
        group.bench_function(BenchmarkId::new("verify", label), |b| {
            b.iter(|| {
                let start = Instant::now();
                let report = problem
                    .verify_sharded_with(envelope, &shard_config, &BranchAndBoundBackend)
                    .expect("sharded verification");
                samples.push(start.elapsed().as_secs_f64());
                assert!(report.verdict.is_safe());
                report.solver_stats().nodes_explored
            })
        });
        means.push((
            label.into(),
            samples.iter().sum::<f64>() / samples.len().max(1) as f64,
        ));
    }
    group.finish();

    let mean_of = |label: &str| {
        means
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, m)| *m)
            .expect("benchmark ran")
    };
    let mono_mean = mean_of("monolithic");
    let k1_mean = mean_of("sharded-k1");
    let k4_mean = mean_of("sharded-k4");
    println!(
        "e9 verify means: monolithic {:.3}s, k1 {:.3}s ({:.2}x), k4 {:.3}s ({:.2}x)",
        mono_mean,
        k1_mean,
        mono_mean / k1_mean.max(1e-9),
        k4_mean,
        mono_mean / k4_mean.max(1e-9)
    );
    criterion::report_metric("e9/k1-parity-permille", permille(mono_mean, k1_mean));
    criterion::report_metric("e9/shard-speedup-permille", permille(mono_mean, k4_mean));

    // --- Monitor: detection-rate delta on identical frames ---------------
    let mono_monitor = RuntimeMonitor::new(outcome.perception.clone(), cut, monolithic.clone())
        .expect("monolithic monitor");
    let shard_monitor = ShardedMonitor::new(outcome.perception.clone(), cut, sharded_k4.clone())
        .expect("sharded monitor");
    // Invariant: no training frame may be rejected by the shard union.
    for image in &bundle.images {
        assert!(
            shard_monitor.check(image).is_in_odd(),
            "the sharded monitor rejected a training-set activation"
        );
    }
    let sampler = OddSampler::new(scene);
    let mut monitor_rng = StdRng::seed_from_u64(29);
    let frames = 200usize;
    let mut mono_flagged = 0usize;
    let mut shard_flagged = 0usize;
    for _ in 0..frames {
        let image = render_scene(&sampler.sample_out_of_odd(&mut monitor_rng), &scene);
        let mono_out = !mono_monitor.check(&image).is_in_odd();
        let shard_out = !shard_monitor.check(&image).is_in_odd();
        assert!(
            shard_out || !mono_out,
            "the shard union accepted a frame the monolithic octagon flags"
        );
        mono_flagged += usize::from(mono_out);
        shard_flagged += usize::from(shard_out);
    }
    let mut mono_in_odd = 0usize;
    let mut shard_in_odd = 0usize;
    for _ in 0..frames {
        let image = render_scene(&sampler.sample_in_odd(&mut monitor_rng), &scene);
        mono_in_odd += usize::from(mono_monitor.check(&image).is_in_odd());
        shard_in_odd += usize::from(shard_monitor.check(&image).is_in_odd());
    }
    let mono_rate = mono_flagged as f64 / frames as f64;
    let shard_rate = shard_flagged as f64 / frames as f64;
    println!(
        "e9 monitor: out-of-ODD detection monolithic {:.3} vs sharded {:.3} \
         (in-ODD acceptance {:.3} vs {:.3})",
        mono_rate,
        shard_rate,
        mono_in_odd as f64 / frames as f64,
        shard_in_odd as f64 / frames as f64
    );
    assert!(shard_rate >= mono_rate);
    criterion::report_metric(
        "e9/detection-delta-permille",
        permille(shard_rate - mono_rate, 1.0),
    );

    // One timed entry for the per-frame monitor cost at k = 4 (the price of
    // the tighter detection is k containment checks per frame).
    let probe = render_scene(&sampler.sample_in_odd(&mut monitor_rng), &scene);
    let mut group = c.benchmark_group("e9");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("monitor-frame", "sharded-k4"), |b| {
        b.iter(|| shard_monitor.check(&probe).is_in_odd())
    });
    group.finish();
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);

//! E15: delta-verification economics — how much of a prior run's proof
//! work survives a retrain, and what that reuse buys in wall time.
//!
//! Two retrain scenarios over the same request (2 families × 2^4
//! sub-boxes = 32 obligations each):
//!
//! 1. **head-only** — every tail layer digest is unchanged, so all 32
//!    obligations reuse their prior verdict verbatim (zero solves);
//! 2. **tail-small** — a tiny tail perturbation: the unreachable family's
//!    16 `Safe` verdicts are absorbed by the weight-hull interval check,
//!    the reachable family's 16 counterexamples re-prove.
//!
//! Each delta serve runs on the resident server that holds the prior
//! run's caches (the continuous-verification deployment shape) and is
//! compared against a from-scratch serve of the *same* retrained request
//! on a cold server.
//!
//! Gated records (tools/benchgate):
//! - `delta/reuse-rate-permille` — obligations answered without solving
//!   across both scenarios, in permille (48/64 = 750‰ by construction;
//!   the issue floor is ≥ 500‰).
//! - `delta/parity-permille` — 1000 iff every delta verdict equals the
//!   from-scratch verdict bit-for-bit, both scenarios (zero-width band:
//!   parity is the soundness contract, not a performance target).
//! - `delta/speedup-permille` — from-scratch wall time over delta wall
//!   time across both scenarios, ×1000, capped at 4000; the in-bench
//!   floor is ≥ 2000 (the issue's 2× criterion).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dpv_absint::BoxDomain;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion, Verdict};
use dpv_nn::{Activation, Layer, Network, NetworkBuilder};
use dpv_serve::{
    ObligationServer, ProofDeltaReport, RegionSpec, RequestReport, ServeConfig, VerificationRequest,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 3;
const CUT_WIDTH: usize = 8;
const WORKERS: usize = 2;
/// 2 families × 1 shard × 2^4 sub-boxes.
const OBLIGATIONS: usize = 32;
/// In-bench floor on the aggregate speedup (the issue's 2× criterion).
const SPEEDUP_FLOOR_PERMILLE: u128 = 2000;
/// Cap so scheduler luck on the near-zero head-only delta cannot swing
/// the committed number.
const SPEEDUP_CAP_PERMILLE: u128 = 4000;
/// Full retrain cycles timed per scenario; the minimum wall time on each
/// side is kept. One-shot millisecond timings flake on shared runners (a
/// single descheduled worker wakeup swamps the delta side), while every
/// cycle re-runs the same deterministic work, so the min is the honest
/// noise-free estimate of both sides.
const TIMING_REPEATS: usize = 3;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(0xe15);
    NetworkBuilder::new(4)
        .dense(10, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(0xe15 ^ 0xbeef);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(4, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new(
            "lead-vehicle-visible",
            "synthetic direct-perception property",
        ),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

fn request_for(perception: Network) -> VerificationRequest {
    VerificationRequest {
        perception,
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 400.0),
            RiskCondition::new("reachable").output_ge(0, -400.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 4,
        deadline: None,
    }
}

/// Perturbs one dense layer of the checkpoint (a synthetic retrain step).
fn retrain(prior: &Network, layer: usize, eps: f64) -> Network {
    let mut next = prior.clone();
    let Layer::Dense(d) = &mut next.layers_mut()[layer] else {
        panic!("layer {layer} is dense by construction");
    };
    for r in 0..d.output_dim() {
        for c in 0..d.input_dim() {
            d.weights_mut()[(r, c)] += eps * (1.0 + (r + c) as f64 * 0.1);
        }
    }
    next
}

/// The deterministic surface of a report (dedup flags excluded: a warm
/// delta serve and a cold scratch serve legitimately differ there).
fn view(report: &RequestReport) -> Vec<(usize, usize, usize, usize, Verdict)> {
    report
        .obligations
        .iter()
        .map(|o| (o.index, o.family, o.shard, o.sub_box, o.verdict.clone()))
        .collect()
}

struct Scenario {
    name: &'static str,
    delta: ProofDeltaReport,
    delta_s: f64,
    scratch: RequestReport,
    scratch_s: f64,
}

/// One retrain scenario, [`TIMING_REPEATS`] full cycles: each cycle
/// stands up a fresh resident server, serves the prior checkpoint
/// (untimed — it is the already-paid history), times `serve_delta` of the
/// retrained checkpoint, and times a from-scratch serve of the same
/// retrained request on a cold server. Minimum wall time per side is
/// kept; reports are deterministic across cycles, so any cycle's pair
/// feeds the parity and disposition records.
fn run_scenario(
    name: &'static str,
    prior_request: &VerificationRequest,
    retrained: Network,
) -> Scenario {
    let new_request = request_for(retrained);
    let mut best: Option<(ProofDeltaReport, f64, RequestReport, f64)> = None;

    for _ in 0..TIMING_REPEATS {
        let resident = ObligationServer::builder()
            .config(ServeConfig::with_workers(WORKERS))
            .build();
        let prior = resident.serve(prior_request).unwrap();
        assert_eq!(prior.obligations.len(), OBLIGATIONS);

        let t0 = Instant::now();
        let delta = resident
            .serve_delta(prior_request, &prior, &new_request)
            .unwrap();
        let delta_s = t0.elapsed().as_secs_f64();

        let cold = ObligationServer::builder()
            .config(ServeConfig::with_workers(WORKERS))
            .build();
        let t0 = Instant::now();
        let scratch = cold.serve(&new_request).unwrap();
        let scratch_s = t0.elapsed().as_secs_f64();

        best = Some(match best {
            None => (delta, delta_s, scratch, scratch_s),
            Some((_, ds, _, ss)) => (delta, ds.min(delta_s), scratch, ss.min(scratch_s)),
        });
    }

    let (delta, delta_s, scratch, scratch_s) = best.expect("TIMING_REPEATS >= 1");
    Scenario {
        name,
        delta,
        delta_s,
        scratch,
        scratch_s,
    }
}

fn bench_delta(c: &mut Criterion) {
    let prior_net = perception();
    let prior_request = request_for(prior_net.clone());
    let resident = ObligationServer::builder()
        .config(ServeConfig::with_workers(WORKERS))
        .build();
    let prior = resident.serve(&prior_request).unwrap();
    assert_eq!(prior.obligations.len(), OBLIGATIONS);

    let scenarios = [
        run_scenario("head-only", &prior_request, retrain(&prior_net, 0, 0.05)),
        run_scenario("tail-small", &prior_request, retrain(&prior_net, 4, 1e-7)),
    ];

    // --- Reuse rate: obligations answered without solving, aggregate. ---
    let total: usize = scenarios.iter().map(|s| s.delta.dispositions.len()).sum();
    let unsolved: usize = scenarios
        .iter()
        .map(|s| {
            let counts = s.delta.counts();
            counts.reused + counts.absorbed
        })
        .sum();
    let reuse_rate = (unsolved * 1000 / total) as u128;
    criterion::report_metric("delta/reuse-rate-permille", reuse_rate);

    // --- Parity: the soundness contract, both scenarios. ---
    let parity = u128::from(
        scenarios
            .iter()
            .all(|s| view(&s.delta.report) == view(&s.scratch)),
    );
    criterion::report_metric("delta/parity-permille", parity * 1000);

    // --- Speedup: scratch wall over delta wall, aggregate, capped. ---
    let scratch_s: f64 = scenarios.iter().map(|s| s.scratch_s).sum();
    let delta_s: f64 = scenarios.iter().map(|s| s.delta_s).sum();
    let speedup = ((scratch_s / delta_s) * 1000.0) as u128;
    assert!(
        speedup >= SPEEDUP_FLOOR_PERMILLE,
        "delta serving must be at least 2x faster than from-scratch \
         (measured {speedup}permille: scratch {scratch_s:.4}s vs delta {delta_s:.4}s)"
    );
    criterion::report_metric("delta/speedup-permille", speedup.min(SPEEDUP_CAP_PERMILLE));

    for s in &scenarios {
        let counts = s.delta.counts();
        println!(
            "e15 {}: {} reused / {} absorbed / {} re-proved / {} degraded | \
             delta {:.3}ms vs scratch {:.3}ms",
            s.name,
            counts.reused,
            counts.absorbed,
            counts.re_proved,
            counts.newly_degraded,
            s.delta_s * 1e3,
            s.scratch_s * 1e3,
        );
    }

    // --- Informational latency curves for the artifact. ---
    let mut group = c.benchmark_group("e15");
    group.sample_size(3);
    group.bench_function("serve/delta-head-only", |b| {
        let retrained = request_for(retrain(&prior_net, 0, 0.05));
        b.iter(|| {
            resident
                .serve_delta(&prior_request, &prior, &retrained)
                .unwrap()
                .dispositions
                .len()
        })
    });
    group.bench_function("serve/scratch", |b| {
        let retrained = request_for(retrain(&prior_net, 0, 0.05));
        b.iter(|| {
            let cold = ObligationServer::builder()
                .config(ServeConfig::with_workers(WORKERS))
                .build();
            cold.serve(&retrained).unwrap().obligations.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);

//! E12: resident obligation server — cross-request cache amortization.
//!
//! A long-lived `ObligationServer` is asked to verify the same tail/risk
//! family three times:
//!
//! 1. a **cold** request (subdivision 4 → 2 families × 16 sub-boxes = 32
//!    obligations) that builds the encoding templates and solves every MILP,
//! 2. an **identical warm repeat** answered entirely from the verdict
//!    deduplication cache, and
//! 3. a **narrower refit** (subdivision 3) that reuses the cached templates
//!    but solves fresh sub-boxes.
//!
//! Gated records (tools/benchgate):
//! - `serve/warm-request-speedup-permille` — cold mean / warm mean, capped at
//!   10000; the gate's absolute floor of 5000 is the "warm is ≥5× cheaper"
//!   contract from the PR.
//! - `serve/dedup-parity-permille` — 1000 iff the warm report's verdicts are
//!   bit-identical to the cold report's (zero-width band at the gate).
//! - `serve/template-hit-rate-permille` and `serve/dedup-rate-permille` —
//!   deterministic cache-economics of the three-request script, gated with
//!   the small absolute slack of the deterministic-rate tolerance class.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dpv_absint::BoxDomain;
use dpv_bench::permille;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion};
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_serve::{ObligationServer, RegionSpec, RequestReport, ServeConfig, VerificationRequest};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 3;
const CUT_WIDTH: usize = 8;
const WORKERS: usize = 2;
/// Mean over this many serve() calls for the timed speedup record.
const REPS: usize = 3;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(0xe12);
    NetworkBuilder::new(4)
        .dense(10, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(0xe12 ^ 0xbeef);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(4, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new(
            "lead-vehicle-visible",
            "synthetic direct-perception property",
        ),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

fn request(subdivision: u32) -> VerificationRequest {
    VerificationRequest {
        perception: perception(),
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 400.0),
            RiskCondition::new("reachable").output_ge(0, -400.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision,
        deadline: None,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig::with_workers(WORKERS)
}

/// The deterministic surface of a report: verdict content only, no timings.
fn verdict_view(report: &RequestReport) -> Vec<(usize, usize, usize, usize, dpv_core::Verdict)> {
    report
        .obligations
        .iter()
        .map(|o| (o.index, o.family, o.shard, o.sub_box, o.verdict.clone()))
        .collect()
}

fn mean_seconds(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn bench_serve(c: &mut Criterion) {
    let wide = request(4);
    let narrow = request(3);

    // --- Acceptance script on one resident server: cold → warm → refit. ---
    let server = ObligationServer::builder().config(serve_config()).build();

    let t0 = Instant::now();
    let cold = server.serve(&wide).unwrap();
    let cold_first = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let warm_first = server.serve(&wide).unwrap();
    let warm_first_s = t1.elapsed().as_secs_f64();

    let refit = server.serve(&narrow).unwrap();

    assert_eq!(cold.obligations.len(), 32);
    assert_eq!(refit.obligations.len(), 16);
    assert!(cold.obligations.iter().all(|o| !o.deduped));
    assert!(warm_first.obligations.iter().all(|o| o.deduped));
    assert!(cold.verdicts[0].verdict.is_safe());
    assert!(cold.verdicts[1].verdict.is_unsafe());

    // Dedup parity: the warm repeat must reproduce the cold report verbatim
    // (verdict content, not timings).
    let parity = u128::from(
        verdict_view(&cold) == verdict_view(&warm_first) && cold.verdicts == warm_first.verdicts,
    );
    criterion::report_metric("serve/dedup-parity-permille", parity * 1000);

    // Cache economics after the fixed three-request script: 2 template
    // misses (cold) vs 4 hits (warm + refit), and 32 of 80 obligations
    // answered from the verdict cache. Both are deterministic.
    let stats = server.stats();
    criterion::report_metric(
        "serve/template-hit-rate-permille",
        u128::from(stats.template_hit_rate_permille()),
    );
    criterion::report_metric(
        "serve/dedup-rate-permille",
        u128::from(stats.dedup_rate_permille()),
    );

    // --- Timed speedup: mean cold request (fresh server each time) vs mean
    // warm repeat on the resident server. ---
    let mut cold_samples = vec![cold_first];
    for _ in 1..REPS {
        let fresh = ObligationServer::builder().config(serve_config()).build();
        let t = Instant::now();
        let report = fresh.serve(&wide).unwrap();
        cold_samples.push(t.elapsed().as_secs_f64());
        assert_eq!(verdict_view(&report), verdict_view(&cold));
    }
    let mut warm_samples = vec![warm_first_s];
    for _ in 1..REPS {
        let t = Instant::now();
        let report = server.serve(&wide).unwrap();
        warm_samples.push(t.elapsed().as_secs_f64());
        assert_eq!(verdict_view(&report), verdict_view(&cold));
    }
    let cold_mean = mean_seconds(&cold_samples);
    let warm_mean = mean_seconds(&warm_samples);
    let speedup = permille(cold_mean, warm_mean).min(10_000);
    assert!(
        speedup >= 5000,
        "warm request must be at least 5x cheaper (got {speedup} permille)"
    );
    criterion::report_metric("serve/warm-request-speedup-permille", speedup);

    println!(
        "e12: cold {:.3}ms warm {:.3}ms speedup {}x/1000 (capped) | {}",
        cold_mean * 1e3,
        warm_mean * 1e3,
        speedup,
        server.stats().summary()
    );

    // --- Informational latency curves for the artifact. ---
    let mut group = c.benchmark_group("e12");
    group.sample_size(3);
    group.bench_function("request/cold-fresh-server", |b| {
        b.iter(|| {
            let fresh = ObligationServer::builder().config(serve_config()).build();
            let report = fresh.serve(&wide).unwrap();
            report.obligations.len()
        })
    });
    let resident = ObligationServer::builder().config(serve_config()).build();
    resident.serve(&wide).unwrap();
    group.bench_function("request/warm-resident-server", |b| {
        b.iter(|| {
            let report = resident.serve(&wide).unwrap();
            report.obligations.len()
        })
    });
    group.bench_function("request/template-refit", |b| {
        b.iter(|| {
            let report = resident.serve(&narrow).unwrap();
            report.obligations.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);

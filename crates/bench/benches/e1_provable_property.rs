//! E1: "impossible to suggest steering to the far left when the road bends
//! to the right" — conditionally provable with the assume-guarantee
//! envelope, not provable with conservative bounds.
//!
//! Prints the verdict of every strategy for the adaptive far-left threshold,
//! then benchmarks the provable (assume-guarantee, box + differences) solve.

use criterion::{criterion_group, criterion_main, Criterion};

use dpv_absint::AbstractDomain;
use dpv_bench::trained_outcome;
use dpv_core::{
    AssumeGuarantee, DomainKind, RiskCondition, VerificationProblem, VerificationStrategy,
};

fn bench_e1(c: &mut Criterion) {
    let outcome = trained_outcome();

    // Adaptive threshold: just below anything the envelope admits.
    let (_, tail) = outcome
        .perception
        .split_at(outcome.cut_layer)
        .expect("split");
    let lower = outcome
        .envelope
        .box_only()
        .propagate(tail.layers())
        .to_box()[0]
        .lo;
    let threshold = lower - 0.05;
    let risk = RiskCondition::new("steer far left").output_le(0, threshold);
    let problem = VerificationProblem::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.bend_characterizer.clone(),
        risk,
    )
    .expect("problem assembly");

    let strategies = vec![
        VerificationStrategy::LayerAbstraction { bound: 1000.0 },
        VerificationStrategy::AbstractInterpretation {
            domain: DomainKind::Box,
        },
        VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope: outcome.envelope.clone(),
            use_difference_constraints: false,
        }),
        VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope: outcome.envelope.clone(),
            use_difference_constraints: true,
        }),
    ];

    println!("=== E1: ψ = waypoint offset ≤ {threshold:.3}, φ = bends right ===");
    for strategy in &strategies {
        let result = problem.verify(strategy).expect("verification");
        println!("  {}", result.summary());
    }

    let provable = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope: outcome.envelope.clone(),
        use_difference_constraints: true,
    });
    let mut group = c.benchmark_group("e1");
    group.sample_size(10);
    group.bench_function("assume_guarantee_box_diff", |b| {
        b.iter(|| problem.verify(&provable).expect("verification"))
    });
    group.bench_function("lemma1_huge_box", |b| {
        b.iter(|| {
            problem
                .verify(&VerificationStrategy::LayerAbstraction { bound: 1000.0 })
                .expect("verification")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);

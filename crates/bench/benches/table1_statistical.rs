//! T1 (Table I): the statistical confusion probabilities α, β, γ and the
//! resulting `1 − γ` guarantee for an imperfect characterizer.
//!
//! Prints the estimated table for the bend characterizer on held-out data,
//! then benchmarks the estimation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_bench::{bench_config, trained_outcome};
use dpv_core::{RiskCondition, StatisticalAnalysis};
use dpv_scenegen::{property_examples, PropertyKind};

fn bench_table1(c: &mut Criterion) {
    let outcome = trained_outcome();
    let scene = bench_config().scene;
    let mut rng = StdRng::seed_from_u64(777);
    let validation = property_examples(&scene, PropertyKind::BendsRight, 300, &mut rng);
    let risk = RiskCondition::new("steer far left").output_le(0, -0.8);

    let analysis = StatisticalAnalysis::estimate(
        &outcome.perception,
        &outcome.bend_characterizer,
        &risk,
        &validation,
    )
    .expect("statistical analysis");
    println!(
        "=== Table I (bends_right characterizer, n = {}) ===",
        validation.len()
    );
    println!("{}", analysis.table().render());
    println!(
        "unsafe misses among γ-mass examples: {}",
        analysis.unsafe_misses()
    );

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("estimate_confusion_table", |b| {
        b.iter(|| {
            StatisticalAnalysis::estimate(
                &outcome.perception,
                &outcome.bend_characterizer,
                &risk,
                &validation,
            )
            .expect("statistical analysis")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

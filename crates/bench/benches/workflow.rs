//! F1 (Figure 1): the end-to-end verification workflow.
//!
//! Prints the full workflow report (training → characterizer → envelope →
//! verification → Table I → monitor), then benchmarks the two operations the
//! figure highlights: building the `[min, max]` (+ adjacent differences)
//! abstraction from visited neuron values, and verifying the grayed
//! close-to-output sub-network against it.

use criterion::{criterion_group, criterion_main, Criterion};

use dpv_bench::trained_outcome;
use dpv_core::{AssumeGuarantee, RiskCondition, VerificationProblem, VerificationStrategy};
use dpv_monitor::ActivationEnvelope;

fn bench_workflow(c: &mut Criterion) {
    let outcome = trained_outcome();
    println!("{}", outcome.report());

    // Re-create the activation set the envelope is built from.
    let activations: Vec<_> = {
        let generator = dpv_scenegen::GeneratorConfig {
            scene: dpv_scenegen::SceneConfig::small(),
            samples: 220,
            seed: 42 ^ 0x11,
            threads: 1,
        };
        let bundle = dpv_scenegen::DatasetBundle::generate(&generator);
        bundle
            .images
            .iter()
            .map(|img| outcome.perception.activation_at(outcome.cut_layer, img))
            .collect()
    };

    let mut group = c.benchmark_group("workflow");
    group.sample_size(10);

    group.bench_function("envelope_construction", |b| {
        b.iter(|| {
            ActivationEnvelope::from_activations(outcome.cut_layer, &activations, 0.0).unwrap()
        })
    });

    let e1 = &outcome.experiments[0];
    let far_left_threshold = -1.5; // conservative stand-in; the printed report shows the adaptive one.
    let risk = RiskCondition::new("steer far left").output_le(0, far_left_threshold);
    let problem = VerificationProblem::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.bend_characterizer.clone(),
        risk,
    )
    .expect("problem assembly");
    let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope: outcome.envelope.clone(),
        use_difference_constraints: true,
    });
    println!(
        "E1 strategies compared in the report: {}",
        e1.outcomes.len()
    );

    group.bench_function("verify_tail_assume_guarantee", |b| {
        b.iter(|| problem.verify(&strategy).expect("verification"))
    });

    group.finish();
}

criterion_group!(benches, bench_workflow);
criterion_main!(benches);

//! E2: "impossible to suggest steering straight when the road bends to the
//! right" — NOT provable under the current setup; the verifier returns a
//! counterexample inside the envelope (the paper attributes this to an
//! inherent limitation of the analysed network).
//!
//! Prints the verdict and the counterexample, then benchmarks the
//! counterexample-finding solve.

use criterion::{criterion_group, criterion_main, Criterion};

use dpv_bench::trained_outcome;
use dpv_core::{
    AssumeGuarantee, RiskCondition, Verdict, VerificationProblem, VerificationStrategy,
};

fn bench_e2(c: &mut Criterion) {
    let outcome = trained_outcome();
    let risk = RiskCondition::new("steer straight")
        .output_le(0, 0.1)
        .output_ge(0, -0.1);
    let problem = VerificationProblem::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.bend_characterizer.clone(),
        risk,
    )
    .expect("problem assembly");
    let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope: outcome.envelope.clone(),
        use_difference_constraints: true,
    });

    let result = problem.verify(&strategy).expect("verification");
    println!("=== E2: ψ = waypoint offset in [-0.1, 0.1], φ = bends right ===");
    println!("  {}", result.summary());
    if let Verdict::Unsafe(ce) = &result.verdict {
        println!(
            "  counterexample output = {:?}, characterizer logit = {:?}",
            ce.output.as_slice(),
            ce.logit
        );
        println!(
            "  counterexample confirmed concretely: {}",
            problem
                .confirm_counterexample(&strategy, ce, 1e-4)
                .expect("confirmation")
        );
    }

    let mut group = c.benchmark_group("e2");
    group.sample_size(10);
    group.bench_function("find_counterexample", |b| {
        b.iter(|| problem.verify(&strategy).expect("verification"))
    });
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);

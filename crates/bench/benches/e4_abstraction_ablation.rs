//! E4: ablation of the start-region abstraction — the paper's observation
//! that box-only envelopes are often too coarse and that recording the
//! min/max of adjacent-neuron differences is needed.
//!
//! Prints, for a sweep of risk thresholds, which abstraction proves the
//! property (Lemma-2 interval/zonotope bounds, envelope box, envelope
//! box+diff), then benchmarks the encode+solve cost of the box vs the
//! refined envelope.

use criterion::{criterion_group, criterion_main, Criterion};

use dpv_absint::AbstractDomain;
use dpv_bench::trained_outcome;
use dpv_core::{
    AssumeGuarantee, DomainKind, RiskCondition, VerificationProblem, VerificationStrategy,
};

fn verdict_label(outcome: &dpv_core::VerificationOutcome) -> &'static str {
    if outcome.verdict.is_safe() {
        "SAFE"
    } else if outcome.verdict.is_unsafe() {
        "unsafe"
    } else {
        "unknown"
    }
}

fn bench_e4(c: &mut Criterion) {
    let outcome = trained_outcome();
    let (_, tail) = outcome
        .perception
        .split_at(outcome.cut_layer)
        .expect("split");
    let envelope_lower = outcome
        .envelope
        .box_only()
        .propagate(tail.layers())
        .to_box()[0]
        .lo;

    let strategies: Vec<(&str, VerificationStrategy)> = vec![
        (
            "lemma2-interval",
            VerificationStrategy::AbstractInterpretation {
                domain: DomainKind::Box,
            },
        ),
        (
            "lemma2-zonotope",
            VerificationStrategy::AbstractInterpretation {
                domain: DomainKind::Zonotope,
            },
        ),
        (
            "envelope-box",
            VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: outcome.envelope.clone(),
                use_difference_constraints: false,
            }),
        ),
        (
            "envelope-box+diff",
            VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: outcome.envelope.clone(),
                use_difference_constraints: true,
            }),
        ),
    ];

    println!(
        "=== E4: strategy ablation over risk thresholds (ψ = offset ≤ t, φ = bends right) ==="
    );
    println!("(envelope-box output lower bound ≈ {envelope_lower:.3})");
    let thresholds = [
        envelope_lower - 0.5,
        envelope_lower - 0.05,
        envelope_lower + 0.05,
        -0.3,
        0.0,
    ];
    print!("{:<12}", "threshold");
    for (name, _) in &strategies {
        print!("{name:>20}");
    }
    println!();
    for &t in &thresholds {
        let risk = RiskCondition::new("steer far left").output_le(0, t);
        let problem = VerificationProblem::new(
            outcome.perception.clone(),
            outcome.cut_layer,
            outcome.bend_characterizer.clone(),
            risk,
        )
        .expect("problem assembly");
        print!("{t:<12.3}");
        for (_, strategy) in &strategies {
            let result = problem.verify(strategy).expect("verification");
            print!("{:>20}", verdict_label(&result));
        }
        println!();
    }

    // Benchmark encode+solve for the box vs the refined envelope at the
    // provable threshold.
    let risk = RiskCondition::new("steer far left").output_le(0, envelope_lower - 0.05);
    let problem = VerificationProblem::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.bend_characterizer.clone(),
        risk,
    )
    .expect("problem assembly");
    let box_strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope: outcome.envelope.clone(),
        use_difference_constraints: false,
    });
    let diff_strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope: outcome.envelope.clone(),
        use_difference_constraints: true,
    });

    let mut group = c.benchmark_group("e4");
    group.sample_size(10);
    group.bench_function("envelope_box_only", |b| {
        b.iter(|| problem.verify(&box_strategy).expect("verification"))
    });
    group.bench_function("envelope_box_plus_diff", |b| {
        b.iter(|| problem.verify(&diff_strategy).expect("verification"))
    });
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);

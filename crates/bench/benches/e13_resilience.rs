//! E13: fault-tolerant obligation serving — isolation, degradation and
//! deadline economics.
//!
//! One request (2 families × 2^3 sub-boxes = 16 obligations) is served
//! three ways on fresh servers:
//!
//! 1. **fault-free** — the canonical reference report,
//! 2. **faulted, twice** — under a fixed deterministic `FaultPlan`
//!    (panic, persistent and transient exhaustion, snapshot poisoning,
//!    delay), to measure isolation and run-to-run determinism,
//! 3. **already expired** — with a zero deadline, to measure what an
//!    expired request still costs relative to a full solve.
//!
//! Gated records (tools/benchgate):
//! - `serve/fault-isolation-parity-permille` — 1000 iff the two faulted
//!   runs agree verbatim AND every obligation the plan does not touch is
//!   bit-identical to the fault-free reference (zero-width band at the
//!   gate: isolation is a correctness contract).
//! - `serve/degraded-completion-permille` — fraction of obligations in
//!   the faulted report that are accounted for: either equal to the
//!   reference or carrying a machine-readable `FailureReason` code. A
//!   complete degraded report scores 1000.
//! - `serve/deadline-overrun-permille` — expired-request serve time as a
//!   permille of the full fault-free solve time (lower is better; the
//!   expired fast path must never pay for real solving).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dpv_absint::BoxDomain;
use dpv_bench::permille;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion, Verdict};
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_serve::{
    FailureReason, FaultKind, FaultPlan, ObligationServer, RegionSpec, RequestReport, ServeConfig,
    VerificationRequest,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 3;
const CUT_WIDTH: usize = 8;
const WORKERS: usize = 2;
/// 2 families × 1 shard × 2^3 sub-boxes.
const OBLIGATIONS: usize = 16;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(0xe13);
    NetworkBuilder::new(4)
        .dense(10, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(0xe13 ^ 0xbeef);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(4, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new(
            "lead-vehicle-visible",
            "synthetic direct-perception property",
        ),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

fn request() -> VerificationRequest {
    VerificationRequest {
        perception: perception(),
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 400.0),
            RiskCondition::new("reachable").output_ge(0, -400.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 3,
        deadline: None,
    }
}

/// The fixed deterministic fault plan: one of each fault kind, spread
/// across both families.
fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.inject(1, FaultKind::ExhaustIterations);
    plan.inject(3, FaultKind::Panic);
    plan.inject(6, FaultKind::TransientExhaust);
    plan.inject(9, FaultKind::PoisonSnapshot);
    plan.inject(13, FaultKind::Delay { millis: 1 });
    plan
}

fn serve_config() -> ServeConfig {
    ServeConfig::with_workers(WORKERS)
}

fn serve_with_plan(req: &VerificationRequest, plan: &FaultPlan) -> RequestReport {
    let server = ObligationServer::builder().config(serve_config()).build();
    server.set_fault_plan(plan.clone());
    server.serve(req).unwrap()
}

/// The deterministic surface of a report.
fn view(report: &RequestReport) -> Vec<(usize, usize, usize, usize, Verdict)> {
    report
        .obligations
        .iter()
        .map(|o| (o.index, o.family, o.shard, o.sub_box, o.verdict.clone()))
        .collect()
}

fn bench_resilience(c: &mut Criterion) {
    // Injected worker panics are caught by the server; silence the
    // default hook so the bench log stays readable.
    std::panic::set_hook(Box::new(|_| {}));

    let req = request();
    let plan = fault_plan();

    // --- Reference: fault-free canonical report, timed for the overrun
    // denominator. ---
    let t0 = Instant::now();
    let reference = {
        let server = ObligationServer::builder().config(serve_config()).build();
        server.serve(&req).unwrap()
    };
    let full_solve_s = t0.elapsed().as_secs_f64();
    assert_eq!(reference.obligations.len(), OBLIGATIONS);
    assert!(reference.verdicts[0].verdict.is_safe());
    assert!(reference.verdicts[1].verdict.is_unsafe());

    // --- Faulted twice on fresh servers: isolation + determinism. ---
    let faulted = serve_with_plan(&req, &plan);
    let repeat = serve_with_plan(&req, &plan);

    let deterministic = view(&faulted) == view(&repeat);
    let healthy_identical = faulted
        .obligations
        .iter()
        .filter(|o| plan.fault_at(o.index).is_none())
        .all(|o| o.verdict == reference.obligations[o.index].verdict);
    let parity = u128::from(deterministic && healthy_identical);
    criterion::report_metric("serve/fault-isolation-parity-permille", parity * 1000);

    // Degraded completion: every obligation of the faulted report must be
    // accounted for — reference-identical or a machine-readable code.
    let accounted = faulted
        .obligations
        .iter()
        .filter(|o| {
            o.verdict == reference.obligations[o.index].verdict
                || FailureReason::of(&o.verdict).is_some()
        })
        .count();
    criterion::report_metric(
        "serve/degraded-completion-permille",
        (accounted * 1000 / OBLIGATIONS) as u128,
    );

    // --- Expired request: what does a zero-deadline serve still cost? ---
    let mut expired_req = request();
    expired_req.deadline = Some(std::time::Duration::ZERO);
    let expired_server = ObligationServer::builder().config(serve_config()).build();
    let t1 = Instant::now();
    let expired = expired_server.serve(&expired_req).unwrap();
    let expired_s = t1.elapsed().as_secs_f64();
    assert_eq!(expired.obligations.len(), OBLIGATIONS);
    assert!(expired
        .obligations
        .iter()
        .all(|o| { FailureReason::of(&o.verdict) == Some(FailureReason::DeadlineExceeded) }));
    assert_eq!(expired_server.stats().solved, 0);
    let overrun = permille(expired_s, full_solve_s);
    criterion::report_metric("serve/deadline-overrun-permille", overrun);

    println!(
        "e13: full {:.3}ms expired {:.3}ms overrun {}/1000 | parity {} | {}/{} accounted",
        full_solve_s * 1e3,
        expired_s * 1e3,
        overrun,
        parity * 1000,
        accounted,
        OBLIGATIONS
    );

    // --- Informational latency curves for the artifact. ---
    let mut group = c.benchmark_group("e13");
    group.sample_size(3);
    group.bench_function("request/fault-free", |b| {
        b.iter(|| {
            let server = ObligationServer::builder().config(serve_config()).build();
            server.serve(&req).unwrap().obligations.len()
        })
    });
    group.bench_function("request/faulted", |b| {
        b.iter(|| serve_with_plan(&req, &plan).obligations.len())
    });
    group.bench_function("request/expired-deadline", |b| {
        b.iter(|| {
            let server = ObligationServer::builder().config(serve_config()).build();
            server.serve(&expired_req).unwrap().obligations.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);

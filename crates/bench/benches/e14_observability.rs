//! E14: observability economics — tracing must be provably free when
//! off and strictly observational when on.
//!
//! One request (2 families × 2^3 sub-boxes = 16 obligations) is served
//! untraced and traced, cold and warm, on fresh servers:
//!
//! 1. **disabled overhead** — the cost of a recording call through a
//!    *disabled* handle (one branch on an absent `Option`) is measured
//!    directly, multiplied by the number of recording calls a traced
//!    request actually performs (`record_ops`), and expressed as a
//!    permille of the untraced request's wall time. This is the price a
//!    production server pays for carrying the instrumentation unused.
//! 2. **traced parity** — the deterministic report surfaces (verdicts,
//!    fold order, dedup flags) of traced and untraced servers must be
//!    bit-identical, cold and warm.
//!
//! Gated records (tools/benchgate):
//! - `trace/overhead-permille` — disabled-tracing overhead per request,
//!   in permille of the request's wall time (lower is better; the issue
//!   budget is ≤ 20‰, asserted in-bench).
//! - `trace/traced-parity-permille` — 1000 iff every deterministic
//!   surface agrees verbatim (zero-width band at the gate: parity is a
//!   correctness contract, not a performance target).

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dpv_absint::BoxDomain;
use dpv_core::{Characterizer, InputProperty, RiskCondition, StartRegion, Verdict};
use dpv_nn::{Activation, Network, NetworkBuilder};
use dpv_serve::{ObligationServer, RegionSpec, RequestReport, ServeConfig, VerificationRequest};
use dpv_trace::{CounterId, TraceConfig, TraceHandle, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 3;
const CUT_WIDTH: usize = 8;
const WORKERS: usize = 2;
/// 2 families × 1 shard × 2^3 sub-boxes.
const OBLIGATIONS: usize = 16;
/// The in-bench ceiling on disabled-tracing overhead (the issue budget).
const OVERHEAD_BUDGET_PERMILLE: u128 = 20;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(0xe14);
    NetworkBuilder::new(4)
        .dense(10, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(0xe14 ^ 0xbeef);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(4, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new(
            "lead-vehicle-visible",
            "synthetic direct-perception property",
        ),
        CUT,
        head,
        0.9,
    )
    .unwrap()
}

fn request() -> VerificationRequest {
    VerificationRequest {
        perception: perception(),
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 400.0),
            RiskCondition::new("reachable").output_ge(0, -400.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 3,
        deadline: None,
    }
}

/// The deterministic surface of a report.
fn view(report: &RequestReport) -> Vec<(usize, usize, usize, usize, Verdict, bool)> {
    report
        .obligations
        .iter()
        .map(|o| {
            (
                o.index,
                o.family,
                o.shard,
                o.sub_box,
                o.verdict.clone(),
                o.deduped,
            )
        })
        .collect()
}

/// Nanoseconds per recording call through a *disabled* handle, measured
/// over a mix of the call kinds the serving stack actually issues
/// (counter add, histogram observe, the per-node LP hook).
fn disabled_ns_per_op() -> f64 {
    let handle = TraceHandle::disabled();
    const ITERS: u64 = 3_000_000;
    // Warm the branch predictor.
    for i in 0..1000u64 {
        handle.add(CounterId::BnbNodes, black_box(i) & 1);
    }
    let t0 = Instant::now();
    for i in 0..ITERS {
        handle.add(CounterId::BnbNodes, black_box(i) & 1);
        handle.lp_node(i & 1 == 0, black_box(i) & 3);
        handle.observe(dpv_trace::HistogramId::SolveNs, black_box(i));
    }
    t0.elapsed().as_nanos() as f64 / (ITERS as f64 * 3.0)
}

fn serve_timed(server: &ObligationServer, req: &VerificationRequest) -> (RequestReport, f64) {
    let t0 = Instant::now();
    let report = server.serve(req).unwrap();
    (report, t0.elapsed().as_secs_f64())
}

fn bench_observability(c: &mut Criterion) {
    let req = request();

    // --- Untraced requests: the production configuration, timed. ---
    let untraced = ObligationServer::builder()
        .config(ServeConfig::with_workers(WORKERS))
        .build();
    let (untraced_cold, cold_s) = serve_timed(&untraced, &req);
    let (untraced_warm, warm_s) = serve_timed(&untraced, &req);
    assert_eq!(untraced_cold.obligations.len(), OBLIGATIONS);
    assert!(untraced_cold.timeline.is_none());

    // --- Traced requests on an identical fresh server. ---
    let traced = ObligationServer::builder()
        .config(ServeConfig::with_workers(WORKERS))
        .tracer(Tracer::with_config(TraceConfig::default()))
        .build();
    let (traced_cold, _) = serve_timed(&traced, &req);
    let ops_cold = traced.trace_snapshot().record_ops;
    let (traced_warm, _) = serve_timed(&traced, &req);
    let ops_warm = traced.trace_snapshot().record_ops - ops_cold;
    assert!(traced_cold.timeline.is_some());

    // --- Parity: bit-identical deterministic surfaces, cold and warm. ---
    let parity = u128::from(
        view(&untraced_cold) == view(&traced_cold) && view(&untraced_warm) == view(&traced_warm),
    );
    criterion::report_metric("trace/traced-parity-permille", parity * 1000);

    // --- Disabled overhead: per-call cost × calls per request, as a
    // permille of the untraced request's wall time. The cold request
    // performs more recording calls (instantiation, cold LP solves); the
    // warm one is faster, so its denominator is smaller — gate on the
    // worse of the two. ---
    let per_op_ns = disabled_ns_per_op();
    let overhead_cold = (per_op_ns * ops_cold as f64) / (cold_s * 1e9) * 1000.0;
    let overhead_warm = (per_op_ns * ops_warm as f64) / (warm_s * 1e9) * 1000.0;
    let overhead = overhead_cold.max(overhead_warm).ceil() as u128;
    assert!(
        overhead <= OVERHEAD_BUDGET_PERMILLE,
        "disabled tracing must stay under {OVERHEAD_BUDGET_PERMILLE}‰ of request time \
         (measured {overhead}‰: {per_op_ns:.3}ns/op × {ops_cold}/{ops_warm} ops)"
    );
    criterion::report_metric("trace/overhead-permille", overhead);

    println!(
        "e14: {per_op_ns:.3}ns/disabled-op | {ops_cold} cold / {ops_warm} warm record ops | \
         cold {:.3}ms warm {:.3}ms | overhead {overhead}‰ (≤{OVERHEAD_BUDGET_PERMILLE}‰) | \
         parity {}",
        cold_s * 1e3,
        warm_s * 1e3,
        parity * 1000
    );

    // --- Informational latency curves for the artifact. ---
    let mut group = c.benchmark_group("e14");
    group.sample_size(3);
    group.bench_function("request/untraced", |b| {
        b.iter(|| {
            let server = ObligationServer::builder()
                .config(ServeConfig::with_workers(WORKERS))
                .build();
            server.serve(&req).unwrap().obligations.len()
        })
    });
    group.bench_function("request/traced", |b| {
        b.iter(|| {
            let server = ObligationServer::builder()
                .config(ServeConfig::with_workers(WORKERS))
                .tracer(Tracer::with_config(TraceConfig::default()))
                .build();
            server.serve(&req).unwrap().obligations.len()
        })
    });
    group.bench_function("snapshot/export", |b| {
        b.iter(|| traced.trace_snapshot().to_json().len())
    });
    group.finish();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);

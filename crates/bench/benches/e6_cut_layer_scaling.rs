//! E6: the scalability premise — verifying only close-to-output layers.
//!
//! The paper's scalability argument (Section I) is that exact verification
//! of the whole perception network is hopeless, but the sub-network from a
//! close-to-output layer onwards is tractable. This bench moves the cut
//! layer earlier and reports how the MILP size (binary/stable ReLU count)
//! and solve time grow, then benchmarks verification at the latest and the
//! earliest dense cut.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dpv_bench::{bench_config, quick_outcome};
use dpv_core::{
    AssumeGuarantee, Characterizer, CharacterizerConfig, InputProperty, RiskCondition,
    VerificationProblem, VerificationStrategy,
};
use dpv_monitor::ActivationEnvelope;
use dpv_scenegen::{property_examples, DatasetBundle, GeneratorConfig, PropertyKind};

fn bench_e6(c: &mut Criterion) {
    let outcome = quick_outcome();
    let scene = bench_config().scene;
    // Candidate cut layers of the perception architecture:
    //   4 = after the 32-wide dense + ReLU (earlier, larger tail),
    //   6 = after the 16-wide dense + ReLU (the default close-to-output cut).
    // The 420-wide post-convolution layer (index 2) is deliberately outside
    // the sweep: exact MILP verification from there is already intractable,
    // which is precisely the paper's scalability motivation for cutting
    // close to the output.
    let cuts = [6usize, 4];

    let generator = GeneratorConfig {
        scene,
        samples: 150,
        seed: 11,
        threads: 1,
    };
    let bundle = DatasetBundle::generate(&generator);
    let mut rng = StdRng::seed_from_u64(17);
    let examples = property_examples(&scene, PropertyKind::BendsRight, 160, &mut rng);
    // A reachable risk condition, so every cut measures the typical
    // counterexample-search query rather than a worst-case exhaustive proof.
    let risk = RiskCondition::new("suggest steering right").output_ge(0, 0.0);

    println!("=== E6: MILP size and solve time versus the cut layer ===");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "cut layer", "cut dim", "binaries", "stable", "nodes", "seconds"
    );

    let mut problems = Vec::new();
    for &cut in &cuts {
        let characterizer = Characterizer::train(
            InputProperty::new("bends_right", "scene oracle"),
            &outcome.perception,
            cut,
            &examples,
            &CharacterizerConfig::small(),
            &mut rng,
        )
        .expect("characterizer training");
        let envelope =
            ActivationEnvelope::from_inputs(&outcome.perception, cut, &bundle.images, 0.0)
                .expect("envelope from training activations");
        let problem =
            VerificationProblem::new(outcome.perception.clone(), cut, characterizer, risk.clone())
                .expect("problem assembly");
        let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
            envelope,
            use_difference_constraints: true,
        });
        let result = problem.verify(&strategy).expect("verification");
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>12} {:>10.3}",
            cut,
            outcome.perception.layer_output_dim(cut),
            result.num_binaries,
            result.stable_relus,
            result.nodes_explored,
            result.solve_seconds
        );
        problems.push((cut, problem, strategy));
    }

    let mut group = c.benchmark_group("e6");
    group.sample_size(10);
    for (cut, problem, strategy) in &problems {
        group.bench_with_input(BenchmarkId::new("verify_at_cut", cut), cut, |b, _| {
            b.iter(|| problem.verify(strategy).expect("verification"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);

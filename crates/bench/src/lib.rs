//! # dpv-bench
//!
//! Shared setup code for the Criterion benchmark harness. Every table and
//! figure of the paper's evaluation (see `DESIGN.md` and `EXPERIMENTS.md`)
//! has one bench target under `benches/`; each target first *prints* the
//! rows/series it reproduces (so `cargo bench` doubles as the experiment
//! harness) and then benchmarks the operation the experiment is about.

use dpv_core::{Workflow, WorkflowConfig, WorkflowOutcome};

/// Workflow configuration used by every benchmark: large enough that the
/// trained networks behave like the paper's (the bend characterizer is
/// accurate, the traffic one is not), small enough that each bench target
/// finishes in tens of seconds.
pub fn bench_config() -> WorkflowConfig {
    WorkflowConfig {
        training_samples: 220,
        characterizer_samples: 220,
        validation_samples: 150,
        perception_epochs: 15,
        ..WorkflowConfig::small()
    }
}

/// Trains the full pipeline once (perception network, characterizers,
/// envelope, verification experiments, statistics) for use as benchmark
/// setup.
///
/// # Panics
/// Panics when the workflow fails — a benchmark cannot proceed without its
/// subject.
pub fn trained_outcome() -> WorkflowOutcome {
    Workflow::new(bench_config())
        .run()
        .expect("benchmark setup workflow must succeed")
}

/// Convenience: a shorter workflow for benches that only need a trained
/// perception network (not tight characterizers).
///
/// # Panics
/// Panics when the workflow fails.
pub fn quick_outcome() -> WorkflowOutcome {
    let config = WorkflowConfig {
        training_samples: 120,
        characterizer_samples: 120,
        validation_samples: 80,
        perception_epochs: 8,
        ..WorkflowConfig::small()
    };
    Workflow::new(config)
        .run()
        .expect("benchmark setup workflow must succeed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_consistent() {
        let cfg = bench_config();
        assert!(cfg.training_samples >= cfg.validation_samples);
        assert!(cfg.perception_epochs > 0);
    }
}

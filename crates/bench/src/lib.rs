//! # dpv-bench
//!
//! Shared setup code for the Criterion benchmark harness. Every table and
//! figure of the paper's evaluation (see `DESIGN.md` and `EXPERIMENTS.md`)
//! has one bench target under `benches/`; each target first *prints* the
//! rows/series it reproduces (so `cargo bench` doubles as the experiment
//! harness) and then benchmarks the operation the experiment is about.

use dpv_core::{Workflow, WorkflowConfig, WorkflowOutcome};
use dpv_lp::{
    LpStatus, MilpProblem, MilpSolution, MilpStatus, SolveStats, SolverBackend, VarId, SOLVER_EPS,
};

/// Ratio → permille conversion for `criterion::report_metric` records
/// (`0` when the denominator is non-positive). Shared by every bench
/// target that emits `*-permille` metrics, so the rounding convention
/// stays uniform across `BENCH_*.json` files.
pub fn permille(numerator: f64, denominator: f64) -> u128 {
    if denominator <= 0.0 {
        return 0;
    }
    ((numerator / denominator) * 1000.0).round().max(0.0) as u128
}

/// Workflow configuration used by every benchmark: large enough that the
/// trained networks behave like the paper's (the bend characterizer is
/// accurate, the traffic one is not), small enough that each bench target
/// finishes in tens of seconds.
pub fn bench_config() -> WorkflowConfig {
    WorkflowConfig {
        training_samples: 220,
        characterizer_samples: 220,
        validation_samples: 150,
        perception_epochs: 15,
        ..WorkflowConfig::small()
    }
}

/// Trains the full pipeline once (perception network, characterizers,
/// envelope, verification experiments, statistics) for use as benchmark
/// setup.
///
/// # Panics
/// Panics when the workflow fails — a benchmark cannot proceed without its
/// subject.
pub fn trained_outcome() -> WorkflowOutcome {
    Workflow::new(bench_config())
        .run()
        .expect("benchmark setup workflow must succeed")
}

/// Convenience: a shorter workflow for benches that only need a trained
/// perception network (not tight characterizers).
///
/// # Panics
/// Panics when the workflow fails.
pub fn quick_outcome() -> WorkflowOutcome {
    let config = WorkflowConfig {
        training_samples: 120,
        characterizer_samples: 120,
        validation_samples: 80,
        perception_epochs: 8,
        ..WorkflowConfig::small()
    };
    Workflow::new(config)
        .run()
        .expect("benchmark setup workflow must succeed")
}

/// The PR-1 branch-and-bound algorithm, kept verbatim as a benchmark
/// baseline. It differs from the production serial engine in two ways this
/// PR changed: it clones the entire [`dpv_lp::LinearProgram`] at **every**
/// node (the production engines reuse a single scratch LP — tighten on
/// descent, restore on backtrack), and it branches on the *first* fractional
/// binary (the production engines branch most-fractional on the
/// feasibility-only problems verification issues, which measurably shrinks
/// refutation trees). `benches/e7_parallel_scaling.rs` measures both
/// effects. Built entirely on the public `dpv-lp` API so the solver crate
/// carries no legacy code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CloningBranchAndBoundBackend;

impl SolverBackend for CloningBranchAndBoundBackend {
    fn name(&self) -> &str {
        "branch-and-bound(pr1-cloning)"
    }

    fn solve(&self, problem: &MilpProblem) -> MilpSolution {
        let lp = problem.lp();
        let binaries = problem.binaries();
        let feasibility_only = lp.objective().iter().all(|&c| c == 0.0);
        let maximize = lp.is_maximization();
        let mut stats = SolveStats::default();
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        let mut stack: Vec<Vec<(VarId, f64)>> = vec![Vec::new()];
        let mut hit_limit = false;

        while let Some(fixings) = stack.pop() {
            if stats.nodes_explored >= problem.node_limit() {
                hit_limit = true;
                break;
            }
            stats.nodes_explored += 1;

            // The hot-path allocation the scratch-LP rework removed.
            let mut relaxation = lp.clone();
            for (var, value) in &fixings {
                relaxation.tighten_bounds(*var, *value, *value);
            }
            let solution = relaxation.solve();
            match solution.status {
                LpStatus::Infeasible => continue,
                // This reference backend never passes a cancel token, so
                // Cancelled is unreachable; fold it with IterationLimit.
                LpStatus::IterationLimit | LpStatus::Cancelled => {
                    return MilpSolution {
                        status: MilpStatus::IterationLimit,
                        values: Vec::new(),
                        objective: 0.0,
                        stats,
                    };
                }
                LpStatus::Unbounded => {
                    if fixings.len() == binaries.len() {
                        return MilpSolution {
                            status: MilpStatus::Unbounded,
                            values: Vec::new(),
                            objective: 0.0,
                            stats,
                        };
                    }
                }
                LpStatus::Optimal => {
                    if let Some((_, best)) = &incumbent {
                        let worse = if maximize {
                            solution.objective <= *best + SOLVER_EPS
                        } else {
                            solution.objective >= *best - SOLVER_EPS
                        };
                        if worse {
                            stats.nodes_pruned += 1;
                            continue;
                        }
                    }
                }
            }

            let fractional = if solution.status == LpStatus::Optimal {
                binaries
                    .iter()
                    .copied()
                    .filter(|&b| fixings.iter().all(|(v, _)| *v != b))
                    .find(|&b| {
                        let v = solution.values[b];
                        (v - v.round()).abs() > 1e-6
                    })
            } else {
                binaries
                    .iter()
                    .copied()
                    .find(|&b| fixings.iter().all(|(v, _)| *v != b))
            };

            match fractional {
                None if solution.status == LpStatus::Optimal => {
                    let objective = solution.objective;
                    let better = match &incumbent {
                        None => true,
                        Some((_, best)) => {
                            if maximize {
                                objective > *best
                            } else {
                                objective < *best
                            }
                        }
                    };
                    if better {
                        incumbent = Some((solution.values.clone(), objective));
                    }
                    if feasibility_only {
                        break;
                    }
                }
                None => {}
                Some(branch_var) => {
                    let suggested = if solution.status == LpStatus::Optimal {
                        solution.values[branch_var].round().clamp(0.0, 1.0)
                    } else {
                        1.0
                    };
                    let other = 1.0 - suggested;
                    let mut first = fixings.clone();
                    first.push((branch_var, other));
                    let mut second = fixings;
                    second.push((branch_var, suggested));
                    stack.push(first);
                    stack.push(second);
                }
            }
        }

        match incumbent {
            Some((values, objective)) => MilpSolution {
                status: if hit_limit {
                    MilpStatus::NodeLimit
                } else {
                    MilpStatus::Optimal
                },
                values,
                objective,
                stats,
            },
            None => MilpSolution {
                status: if hit_limit {
                    MilpStatus::NodeLimit
                } else {
                    MilpStatus::Infeasible
                },
                values: Vec::new(),
                objective: 0.0,
                stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_lp::{BranchAndBoundBackend, ConstraintOp};

    #[test]
    fn bench_config_is_consistent() {
        let cfg = bench_config();
        assert!(cfg.training_samples >= cfg.validation_samples);
        assert!(cfg.perception_epochs > 0);
    }

    #[test]
    fn cloning_baseline_matches_the_production_engine() {
        // max 10a + 6b + 4c  s.t.  a + b + c <= 2 (binaries) → 16.
        let mut milp = MilpProblem::new();
        let a = milp.add_binary();
        let b = milp.add_binary();
        let c = milp.add_binary();
        milp.lp_mut()
            .set_objective(&[(a, 10.0), (b, 6.0), (c, 4.0)], true);
        milp.lp_mut()
            .add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], ConstraintOp::Le, 2.0);
        let baseline = CloningBranchAndBoundBackend.solve(&milp);
        let production = BranchAndBoundBackend.solve(&milp);
        assert_eq!(baseline.status, MilpStatus::Optimal);
        assert!((baseline.objective - production.objective).abs() < 1e-6);
        // Optimisation problems share the branching rule, so the search
        // trees are identical; only the per-node allocation differs.
        assert_eq!(
            baseline.stats.nodes_explored,
            production.stats.nodes_explored
        );
    }
}

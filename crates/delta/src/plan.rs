//! Mapping a prior run's verdicts onto a new checkpoint: the
//! [`DeltaPlanner`] and its outputs.
//!
//! A plan is computed *before* any solving happens: for each obligation of
//! the prior run (its family, start region and verdict) the planner decides
//! whether the verdict can be reused verbatim ([`PlannedAction::Reuse`]),
//! reused because the tail perturbation is provably absorbed by the bound
//! slack ([`PlannedAction::ReuseAbsorbed`]), or must be re-solved
//! ([`PlannedAction::Resolve`]). The executed outcome of each action is a
//! [`Disposition`], stamped by `dpv-serve` once the re-solves return.

use std::error::Error;
use std::fmt;

use dpv_core::{RiskCondition, StartRegion, Verdict};

use crate::diff::CheckpointDiff;
use crate::digest::ModelFingerprint;

/// Final outcome of one obligation in a delta-verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// The obligation is bit-identical to the prior checkpoint's, so the
    /// prior verdict is the canonical verdict; carries the prior
    /// checkpoint's fingerprint as provenance.
    Reused {
        /// Fingerprint of the checkpoint the verdict was originally proved
        /// against.
        prior_fingerprint: ModelFingerprint,
    },
    /// The tail changed but the perturbation was provably inside the bound
    /// slack; the prior `Safe` verdict stands without solving.
    Absorbed,
    /// Re-solved from scratch and produced a definitive verdict.
    ReProved,
    /// Re-solved and came back `Unknown` — the delta run could not
    /// re-establish a definitive verdict.
    NewlyDegraded,
}

/// Planned handling of one obligation, before solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedAction {
    /// Carry the prior verdict over verbatim.
    Reuse,
    /// Carry the prior `Safe` verdict over on the strength of the
    /// weight-hull absorption check.
    ReuseAbsorbed,
    /// Re-solve the obligation against the new checkpoint.
    Resolve,
}

/// One obligation of the prior run, as the planner sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorObligation {
    /// Index into the request's risk-condition families.
    pub family: usize,
    /// The obligation's start region in the prior run.
    pub region: StartRegion,
    /// The verdict the prior run assigned.
    pub verdict: Verdict,
}

/// A complete re-verification plan: one [`PlannedAction`] per obligation,
/// in obligation order, plus summary counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    actions: Vec<PlannedAction>,
    reuse_count: usize,
    absorbed_count: usize,
    resolve_count: usize,
}

impl DeltaPlan {
    /// Per-obligation actions, aligned with the planner's input order.
    pub fn actions(&self) -> &[PlannedAction] {
        &self.actions
    }

    /// Obligations whose prior verdict carries over verbatim.
    pub fn reuse_count(&self) -> usize {
        self.reuse_count
    }

    /// Obligations whose prior `Safe` verdict carries over by absorption.
    pub fn absorbed_count(&self) -> usize {
        self.absorbed_count
    }

    /// Obligations that must be re-solved.
    pub fn resolve_count(&self) -> usize {
        self.resolve_count
    }

    /// Fraction of obligations *not* re-solved, in permille (0..=1000).
    /// Zero for an empty plan.
    pub fn reuse_rate_permille(&self) -> u64 {
        let total = self.actions.len();
        if total == 0 {
            return 0;
        }
        (((self.reuse_count + self.absorbed_count) * 1000) / total) as u64
    }
}

/// Error from [`DeltaPlanner::plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// Input lists disagree on obligation count, or a prior obligation
    /// names a family outside the risk list.
    ShapeMismatch(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::ShapeMismatch(msg) => write!(f, "delta plan shape mismatch: {msg}"),
        }
    }
}

impl Error for DeltaError {}

/// Decides, per obligation, whether a prior verdict survives a checkpoint
/// change.
///
/// The planner is pure: it reads a [`CheckpointDiff`] plus the prior run's
/// obligations and emits a [`DeltaPlan`]; executing the plan (prefilled
/// verdicts, warm-started re-solves) is `dpv-serve`'s job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaPlanner {
    slack: f64,
}

impl Default for DeltaPlanner {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaPlanner {
    /// Planner with the default absorption slack (`1e-9`), a strict margin
    /// on the interval refutation that dominates the MILP solver's
    /// numerical tolerance.
    pub fn new() -> Self {
        Self { slack: 1e-9 }
    }

    /// Planner with an explicit absorption slack. Larger slack makes
    /// absorption *harder* (more conservative), never less sound.
    pub fn with_slack(slack: f64) -> Self {
        Self { slack }
    }

    /// The absorption slack.
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Plans the re-verification of one request across a checkpoint change.
    ///
    /// `prior[i]` and `regions[i]` describe the same obligation: its prior
    /// run and its start region in the *new* request (these differ when an
    /// envelope was refit). Per obligation, in order of preference:
    ///
    /// 1. region changed → [`PlannedAction::Resolve`] (a moved region is a
    ///    different obligation; nothing transfers);
    /// 2. tail bit-identical and the prior verdict definitive (`Safe` or
    ///    `Unsafe`, not `Unknown`) → [`PlannedAction::Reuse`];
    /// 3. prior verdict `Safe` and the weight-hull check absorbs the tail
    ///    perturbation for this region and family →
    ///    [`PlannedAction::ReuseAbsorbed`];
    /// 4. otherwise → [`PlannedAction::Resolve`].
    pub fn plan(
        &self,
        diff: &CheckpointDiff,
        cut_layer: usize,
        risks: &[RiskCondition],
        prior: &[PriorObligation],
        regions: &[StartRegion],
    ) -> Result<DeltaPlan, DeltaError> {
        if prior.len() != regions.len() {
            return Err(DeltaError::ShapeMismatch(format!(
                "{} prior obligations vs {} regions",
                prior.len(),
                regions.len()
            )));
        }
        let tail_identical = diff.tail_identical(cut_layer);
        let mut actions = Vec::with_capacity(prior.len());
        let mut reuse_count = 0;
        let mut absorbed_count = 0;
        let mut resolve_count = 0;
        for (p, region) in prior.iter().zip(regions) {
            let risk = risks.get(p.family).ok_or_else(|| {
                DeltaError::ShapeMismatch(format!(
                    "prior obligation names family {} but only {} risk conditions exist",
                    p.family,
                    risks.len()
                ))
            })?;
            let action = if p.region != *region {
                PlannedAction::Resolve
            } else if tail_identical && !matches!(p.verdict, Verdict::Unknown(_)) {
                PlannedAction::Reuse
            } else if p.verdict.is_safe()
                && diff.tail_absorbs(cut_layer, &region.box_domain(), risk, self.slack)
            {
                PlannedAction::ReuseAbsorbed
            } else {
                PlannedAction::Resolve
            };
            match action {
                PlannedAction::Reuse => reuse_count += 1,
                PlannedAction::ReuseAbsorbed => absorbed_count += 1,
                PlannedAction::Resolve => resolve_count += 1,
            }
            actions.push(action);
        }
        Ok(DeltaPlan {
            actions,
            reuse_count,
            absorbed_count,
            resolve_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_absint::BoxDomain;
    use dpv_nn::{Activation, Layer, Network, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const CUT: usize = 1;

    fn checkpoint(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build()
    }

    fn perturb(net: &Network, layer: usize, eps: f64) -> Network {
        let mut out = net.clone();
        if let Layer::Dense(d) = &mut out.layers_mut()[layer] {
            for r in 0..d.output_dim() {
                for c in 0..d.input_dim() {
                    d.weights_mut()[(r, c)] += eps;
                }
            }
        } else {
            panic!("layer {layer} is dense by construction");
        }
        out
    }

    fn risks() -> Vec<RiskCondition> {
        vec![
            RiskCondition::new("unreachable").output_ge(0, 500.0),
            RiskCondition::new("reachable").output_ge(0, -500.0),
        ]
    }

    fn region() -> StartRegion {
        StartRegion::Box(BoxDomain::uniform(4, -1.0, 1.0))
    }

    fn prior(family: usize, verdict: Verdict) -> PriorObligation {
        PriorObligation {
            family,
            region: region(),
            verdict,
        }
    }

    #[test]
    fn head_only_change_reuses_every_definitive_verdict() {
        let old = checkpoint(5);
        let new = perturb(&old, 0, 0.3);
        let diff = CheckpointDiff::between(&old, &new);
        let prior = vec![
            prior(0, Verdict::Safe),
            prior(1, Verdict::Unknown("node limit".into())),
        ];
        let regions = vec![region(), region()];
        let plan = DeltaPlanner::new()
            .plan(&diff, CUT, &risks(), &prior, &regions)
            .expect("well-shaped inputs");
        assert_eq!(
            plan.actions(),
            &[PlannedAction::Reuse, PlannedAction::Resolve],
            "definitive verdicts reuse; Unknown always re-solves"
        );
        assert_eq!(plan.reuse_count(), 1);
        assert_eq!(plan.resolve_count(), 1);
        assert_eq!(plan.reuse_rate_permille(), 500);
    }

    #[test]
    fn small_tail_change_absorbs_safe_but_resolves_the_rest() {
        let old = checkpoint(5);
        let new = perturb(&old, 2, 1e-6);
        let diff = CheckpointDiff::between(&old, &new);
        let prior = vec![prior(0, Verdict::Safe), prior(1, Verdict::Safe)];
        let regions = vec![region(), region()];
        let plan = DeltaPlanner::new()
            .plan(&diff, CUT, &risks(), &prior, &regions)
            .expect("well-shaped inputs");
        // Family 0's risk is interval-refutable → absorbed; family 1's risk
        // is reachable, so no interval argument exists → re-solve.
        assert_eq!(
            plan.actions(),
            &[PlannedAction::ReuseAbsorbed, PlannedAction::Resolve]
        );
        assert_eq!(plan.absorbed_count(), 1);
        assert_eq!(plan.reuse_rate_permille(), 500);
    }

    #[test]
    fn large_tail_change_resolves_everything() {
        let old = checkpoint(5);
        let new = perturb(&old, 2, 1000.0);
        let diff = CheckpointDiff::between(&old, &new);
        let prior = vec![prior(0, Verdict::Safe), prior(1, Verdict::Safe)];
        let regions = vec![region(), region()];
        let plan = DeltaPlanner::new()
            .plan(&diff, CUT, &risks(), &prior, &regions)
            .expect("well-shaped inputs");
        assert!(plan.actions().iter().all(|a| *a == PlannedAction::Resolve));
        assert_eq!(plan.reuse_rate_permille(), 0);
    }

    #[test]
    fn a_moved_region_always_resolves() {
        let old = checkpoint(5);
        let diff = CheckpointDiff::between(&old, &old.clone());
        let prior = vec![prior(0, Verdict::Safe)];
        let moved = vec![StartRegion::Box(BoxDomain::uniform(4, -2.0, 2.0))];
        let plan = DeltaPlanner::new()
            .plan(&diff, CUT, &risks(), &prior, &moved)
            .expect("well-shaped inputs");
        assert_eq!(plan.actions(), &[PlannedAction::Resolve]);
    }

    #[test]
    fn shape_mismatches_are_reported() {
        let old = checkpoint(5);
        let diff = CheckpointDiff::between(&old, &old.clone());
        let err = DeltaPlanner::new()
            .plan(&diff, CUT, &risks(), &[prior(0, Verdict::Safe)], &[])
            .expect_err("length mismatch");
        assert!(matches!(err, DeltaError::ShapeMismatch(_)));
        let err = DeltaPlanner::new()
            .plan(
                &diff,
                CUT,
                &risks(),
                &[prior(7, Verdict::Safe)],
                &[region()],
            )
            .expect_err("family out of range");
        assert!(err.to_string().contains("family 7"));
    }

    #[test]
    fn empty_plan_reports_zero_rate() {
        let old = checkpoint(5);
        let diff = CheckpointDiff::between(&old, &old.clone());
        let plan = DeltaPlanner::new()
            .plan(&diff, CUT, &risks(), &[], &[])
            .expect("empty inputs are well-shaped");
        assert_eq!(plan.reuse_rate_permille(), 0);
    }
}

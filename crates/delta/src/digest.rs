//! Content digests over layer parameters and whole checkpoints.
//!
//! A [`LayerDigest`] hashes everything that determines a layer's
//! input/output function — layer kind, dimensions, and the raw IEEE-754
//! bit patterns of every parameter — and a [`ModelFingerprint`] folds the
//! per-layer digests (plus the input dimension) into one checkpoint
//! identity. Equality of digests is the "untouched" test of
//! delta-verification: two layers with equal digests compute the same
//! function bit-for-bit, so any verdict derived from one holds for the
//! other.
//!
//! The hash is the workspace's two-lane FNV-1a construction (the same
//! idiom as `dpv_core::Fingerprint`, which hashes *template* tuples rather
//! than checkpoints): two independent 64-bit lanes over discriminant tags,
//! dimension counts and `f64::to_bits` of every parameter, with the lane
//! index mixed into every byte so the lanes are not related by a simple
//! offset. `-0.0` and `0.0` hash differently and NaN payloads are stable —
//! a digest match means byte-identical parameters, never "numerically
//! close".

use std::fmt;

use dpv_nn::{Layer, Network};

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_HI: u64 = 0xcbf2_9ce4_8422_2325;
// Second lane starts from a different offset (FNV offset xor a golden-ratio
// constant) so the lanes disagree on every input word.
const FNV_OFFSET_LO: u64 = 0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15;

/// Two-lane FNV-1a accumulator over 64-bit words.
struct Hasher {
    hi: u64,
    lo: u64,
}

impl Hasher {
    fn new() -> Self {
        Self {
            hi: FNV_OFFSET_HI,
            lo: FNV_OFFSET_LO,
        }
    }

    fn word(&mut self, w: u64) {
        for (lane, state) in [(0u64, &mut self.hi), (1u64, &mut self.lo)] {
            let mut s = *state;
            for byte in w.to_le_bytes() {
                s ^= u64::from(byte) ^ (lane << 7);
                s = s.wrapping_mul(FNV_PRIME);
            }
            *state = s;
        }
    }

    fn tag(&mut self, t: u8) {
        self.word(0x6467_7400 | u64::from(t));
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    fn floats(&mut self, vs: &[f64]) {
        self.word(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
}

/// 128-bit content hash of one layer's function: kind, dimensions, and
/// every parameter by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerDigest {
    hi: u64,
    lo: u64,
}

impl LayerDigest {
    /// Digest of one layer.
    pub fn of(layer: &Layer) -> Self {
        let mut h = Hasher::new();
        hash_layer(&mut h, layer);
        Self { hi: h.hi, lo: h.lo }
    }

    /// Renders the digest as 32 lowercase hex digits.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for LayerDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// 128-bit content hash of a whole checkpoint: the input dimension plus
/// every layer's [`LayerDigest`], in order.
///
/// Two networks share a fingerprint exactly when they are byte-identical
/// as functions — same architecture, same parameters. This is the
/// provenance stamp a reused verdict carries
/// ([`crate::Disposition::Reused`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelFingerprint {
    hi: u64,
    lo: u64,
}

impl ModelFingerprint {
    /// Fingerprint of a checkpoint.
    pub fn of(network: &Network) -> Self {
        let mut h = Hasher::new();
        h.tag(0x01);
        h.word(network.input_dim() as u64);
        h.word(network.len() as u64);
        for layer in network.layers() {
            let d = LayerDigest::of(layer);
            h.word(d.hi);
            h.word(d.lo);
        }
        Self { hi: h.hi, lo: h.lo }
    }

    /// Renders the fingerprint as 32 lowercase hex digits.
    pub fn to_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for ModelFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Per-layer digests of a checkpoint, aligned with
/// [`dpv_nn::Network::layers`].
pub fn layer_digests(network: &Network) -> Vec<LayerDigest> {
    network.layers().iter().map(LayerDigest::of).collect()
}

fn hash_layer(h: &mut Hasher, layer: &Layer) {
    match layer {
        Layer::Dense(d) => {
            h.tag(0x20);
            h.word(d.input_dim() as u64);
            h.word(d.output_dim() as u64);
            h.floats(d.weights().as_slice());
            h.floats(d.bias().as_slice());
        }
        Layer::Activation(a) => {
            use dpv_nn::Activation::*;
            match a {
                Identity => h.tag(0x21),
                ReLU => h.tag(0x22),
                LeakyReLU(slope) => {
                    h.tag(0x23);
                    h.f64(*slope);
                }
                Sigmoid => h.tag(0x24),
                Tanh => h.tag(0x25),
            }
        }
        Layer::BatchNorm(bn) => {
            h.tag(0x26);
            h.word(bn.dim() as u64);
            h.floats(bn.gamma().as_slice());
            h.floats(bn.beta().as_slice());
            h.floats(bn.running_mean().as_slice());
            h.floats(bn.running_var().as_slice());
            h.f64(bn.eps());
        }
        Layer::Conv2d(c) => {
            h.tag(0x27);
            let shape = c.input_shape();
            h.word(shape.channels as u64);
            h.word(shape.height as u64);
            h.word(shape.width as u64);
            h.word(c.kernel() as u64);
            h.word(c.stride() as u64);
            h.floats(c.weights().as_slice());
            h.floats(c.bias().as_slice());
        }
        Layer::MaxPool2d(p) => {
            h.tag(0x28);
            let shape = p.input_shape();
            h.word(shape.channels as u64);
            h.word(shape.height as u64);
            h.word(shape.width as u64);
            h.word(p.pool() as u64);
        }
        Layer::Flatten(f) => {
            h.tag(0x29);
            let shape = f.shape();
            h.word(shape.channels as u64);
            h.word(shape.height as u64);
            h.word(shape.width as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checkpoint(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(3)
            .dense(5, &mut rng)
            .activation(Activation::ReLU)
            .batch_norm()
            .dense(2, &mut rng)
            .build()
    }

    #[test]
    fn identical_checkpoints_share_fingerprint_and_digests() {
        let a = checkpoint(7);
        let b = checkpoint(7);
        assert_eq!(ModelFingerprint::of(&a), ModelFingerprint::of(&b));
        assert_eq!(layer_digests(&a), layer_digests(&b));
    }

    #[test]
    fn a_single_bit_flip_changes_exactly_one_layer_digest() {
        let a = checkpoint(9);
        let mut b = a.clone();
        if let Layer::Dense(d) = &mut b.layers_mut()[3] {
            d.weights_mut()[(0, 0)] += 1e-12;
        } else {
            panic!("layer 3 is dense by construction");
        }
        assert_ne!(ModelFingerprint::of(&a), ModelFingerprint::of(&b));
        let da = layer_digests(&a);
        let db = layer_digests(&b);
        for (i, (x, y)) in da.iter().zip(&db).enumerate() {
            if i == 3 {
                assert_ne!(x, y, "perturbed layer must change digest");
            } else {
                assert_eq!(x, y, "untouched layer {i} must keep its digest");
            }
        }
    }

    #[test]
    fn signed_zero_and_activation_kind_are_distinguished() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = NetworkBuilder::new(2).dense(2, &mut rng).build();
        let mut neg = base.clone();
        if let Layer::Dense(d) = &mut neg.layers_mut()[0] {
            d.bias_mut()[0] = -0.0;
        }
        let mut pos = base.clone();
        if let Layer::Dense(d) = &mut pos.layers_mut()[0] {
            d.bias_mut()[0] = 0.0;
        }
        assert_ne!(ModelFingerprint::of(&neg), ModelFingerprint::of(&pos));
        assert_ne!(
            LayerDigest::of(&Layer::Activation(Activation::ReLU)),
            LayerDigest::of(&Layer::Activation(Activation::Tanh)),
        );
        assert_ne!(
            LayerDigest::of(&Layer::Activation(Activation::LeakyReLU(0.1))),
            LayerDigest::of(&Layer::Activation(Activation::LeakyReLU(0.2))),
        );
    }

    #[test]
    fn bench_family_fingerprints_are_pairwise_distinct() {
        let fps: Vec<ModelFingerprint> = (0..8)
            .map(|seed| ModelFingerprint::of(&checkpoint(seed)))
            .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "collision between seeds {i} and {j}");
            }
        }
    }

    #[test]
    fn hex_rendering_is_stable() {
        let fp = ModelFingerprint::of(&checkpoint(2));
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(fp.to_hex(), format!("{fp}"));
        let d = LayerDigest::of(&Layer::Activation(Activation::ReLU));
        assert_eq!(d.to_hex(), format!("{d}"));
    }
}

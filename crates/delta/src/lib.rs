//! # dpv-delta
//!
//! **Continuous delta-verification across retrains**: when a perception
//! network is retrained, most checkpoints differ from the previous one by
//! small parameter perturbations — yet a from-scratch verification run
//! re-solves every proof obligation as if nothing were known. This crate
//! computes *what is still known*: a per-layer content diff between two
//! checkpoints ([`CheckpointDiff`]) and a re-verification plan
//! ([`DeltaPlanner`]) that maps a prior run's verdicts onto the new
//! checkpoint, obligation by obligation.
//!
//! ## Disposition taxonomy
//!
//! Every obligation of a delta-verified request ends in exactly one
//! [`Disposition`]:
//!
//! | disposition       | meaning                                                        |
//! |-------------------|----------------------------------------------------------------|
//! | `Reused`          | the obligation is **bit-identical** to the prior checkpoint's (tail layers, characterizer, risk and region all unchanged — head-only retrains land here), so the prior verdict *is* the canonical verdict; carries the prior checkpoint's [`ModelFingerprint`] as provenance |
//! | `Absorbed`        | the tail changed, but the perturbation is provably inside the existing bound slack: interval propagation of the region through the weight-*hull* tail refutes the risk (see soundness argument below), so the prior `Safe` verdict stands without solving |
//! | `ReProved`        | the obligation was re-solved from scratch (warm-started where the resident server's caches allow) and produced a definitive verdict |
//! | `NewlyDegraded`   | the obligation was re-solved and came back `Unknown` — the delta run could *not* re-establish a definitive verdict, whatever the prior one was |
//!
//! The corresponding *planned* actions — before any solving happens — are
//! [`PlannedAction::Reuse`], [`PlannedAction::ReuseAbsorbed`] and
//! [`PlannedAction::Resolve`] (a resolve becomes `ReProved` or
//! `NewlyDegraded` once its verdict is in).
//!
//! ## Bound-absorption soundness argument
//!
//! Let `T_old` and `T_new` be the tail networks of the two checkpoints,
//! structurally identical (same layer kinds and dimensions), and let `R` be
//! an obligation's start region at the cut layer. Build the **weight-hull
//! tail** `T_□`: every scalar parameter `p` is replaced by the interval
//! `[min(p_old, p_new), max(p_old, p_new)]`, and layers are evaluated with
//! outward-directed interval arithmetic ([`dpv_absint::Interval::mul`] for
//! interval-weight times interval-activation, the usual interval
//! transformers for activations). Then for every `x ∈ R`:
//!
//! 1. `T_new(x) ∈ T_□(box(R))` — interval evaluation is a sound
//!    over-approximation, and `T_new`'s parameters lie inside the hull by
//!    construction (so do `T_old`'s — the hull encloses the whole
//!    perturbation segment, which is what "the delta is inside the slack"
//!    means operationally).
//! 2. If the risk condition ψ (a conjunction of linear inequalities over
//!    the tail output) is **refuted** on the output box — some inequality
//!    cannot hold anywhere in it, with strict slack — then no `x ∈ R`
//!    satisfies ψ under `T_new`.
//! 3. The obligation's verdict asks whether some `x ∈ R` *that also
//!    satisfies the characterizer constraint* triggers ψ. Dropping the
//!    characterizer constraint only enlarges the candidate set, so the
//!    interval refutation is sound a fortiori: the obligation is `Safe`
//!    for the new checkpoint.
//!
//! Only prior-`Safe` verdicts are ever absorbed: a counterexample
//! (`Unsafe`) is a point property that a perturbed tail need not preserve,
//! and `Unknown` carries no information to reuse. Because the MILP solver
//! is complete on these piecewise-linear obligations, a from-scratch run
//! would also answer `Safe` wherever the (strictly coarser) interval check
//! succeeds — which is why delta verdicts are bit-for-bit equal to
//! from-scratch verdicts (the `delta` parity proptest in `dpv-serve` pins
//! this).
//!
//! ## What lives where
//!
//! * [`LayerDigest`] / [`ModelFingerprint`] ([`digest`]) — content hashes
//!   over layer parameters (weights, biases, activation kind), the
//!   identity test behind "untouched".
//! * [`CheckpointDiff`] ([`diff`]) — per-layer classification of a
//!   checkpoint pair, plus the weight-hull interval propagation.
//! * [`DeltaPlanner`] / [`DeltaPlan`] ([`plan`]) — maps prior obligations
//!   (region + verdict) to planned actions.
//!
//! The serving integration — `ObligationServer::serve_delta`, which
//! executes a plan against the resident solver pool and emits a
//! machine-checkable `ProofDeltaReport` — lives in `dpv-serve`; the
//! centroid-seeded envelope re-clustering that keeps *sharded* obligations
//! aligned across checkpoints lives in `dpv-shard`
//! (`ShardedEnvelope::refit`).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod diff;
pub mod digest;
pub mod plan;

pub use diff::{CheckpointDiff, LayerClass, LayerDelta};
pub use digest::{layer_digests, LayerDigest, ModelFingerprint};
pub use plan::{DeltaError, DeltaPlan, DeltaPlanner, Disposition, PlannedAction, PriorObligation};

//! Per-layer classification of a checkpoint pair, plus the weight-hull
//! interval propagation behind bound absorption.
//!
//! [`CheckpointDiff::between`] digests both networks layer by layer and
//! records, for each position, whether the layers are bit-identical and —
//! when they are structurally comparable — the largest absolute parameter
//! perturbation. The diff then answers the two questions delta-verification
//! planning needs:
//!
//! * [`CheckpointDiff::tail_identical`] — is everything after the cut layer
//!   untouched, so prior verdicts transfer verbatim?
//! * [`CheckpointDiff::tail_absorbs`] — if not, is the perturbation provably
//!   inside the existing bound slack for a *given* start region and risk
//!   condition? This is the weight-hull interval check whose soundness
//!   argument lives on the [crate root](crate).

use std::fmt;

use dpv_absint::{AbstractDomain, BoxDomain, Interval};
use dpv_core::{OutputOp, RiskCondition};
use dpv_nn::{Layer, Network};

use crate::digest::{layer_digests, LayerDigest, ModelFingerprint};

/// How one layer position of the new checkpoint relates to the old one,
/// relative to a cut layer, a start region and a risk condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerClass {
    /// Bit-identical parameters — the layer computes the same function.
    Identical,
    /// The layer changed, but the whole-tail weight-hull propagation still
    /// refutes the risk condition: the perturbation is inside the bound
    /// slack.
    Absorbed,
    /// The layer changed and the perturbation is not provably absorbed.
    Changed,
}

/// One layer position of a [`CheckpointDiff`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDelta {
    /// Layer index in [`dpv_nn::Network::layers`] order.
    pub index: usize,
    /// Digest of the old checkpoint's layer.
    pub old: LayerDigest,
    /// Digest of the new checkpoint's layer.
    pub new: LayerDigest,
    /// Whether the digests match (bit-identical parameters).
    pub identical: bool,
    /// Largest absolute parameter perturbation: `0.0` for identical layers,
    /// the max `|p_new - p_old|` over all parameters when the layers are
    /// structurally comparable (same kind and dimensions), and
    /// [`f64::INFINITY`] when they are not comparable at all.
    pub max_abs_delta: f64,
}

/// A per-layer content diff between two checkpoints of the same
/// architecture lineage.
///
/// Owns clones of both networks so the weight-hull absorption check can
/// re-propagate regions on demand without the caller keeping the
/// checkpoints alive.
#[derive(Debug, Clone)]
pub struct CheckpointDiff {
    old: Network,
    new: Network,
    old_fingerprint: ModelFingerprint,
    new_fingerprint: ModelFingerprint,
    layers: Vec<LayerDelta>,
    structure_compatible: bool,
}

impl CheckpointDiff {
    /// Diffs two checkpoints layer by layer.
    ///
    /// The networks need not have the same layer count or dimensions —
    /// an architecture change simply makes every reuse test fail — but
    /// delta-verification is only profitable when they do.
    pub fn between(old: &Network, new: &Network) -> Self {
        let old_digests = layer_digests(old);
        let new_digests = layer_digests(new);
        let structure_compatible = old.input_dim() == new.input_dim()
            && old.len() == new.len()
            && old
                .layers()
                .iter()
                .zip(new.layers())
                .all(|(a, b)| comparable(a, b));
        let layers = old_digests
            .iter()
            .zip(&new_digests)
            .enumerate()
            .map(|(index, (&od, &nd))| {
                let identical = od == nd;
                let max_abs_delta = if identical {
                    0.0
                } else {
                    max_param_delta(&old.layers()[index], &new.layers()[index])
                };
                LayerDelta {
                    index,
                    old: od,
                    new: nd,
                    identical,
                    max_abs_delta,
                }
            })
            .collect();
        Self {
            old: old.clone(),
            new: new.clone(),
            old_fingerprint: ModelFingerprint::of(old),
            new_fingerprint: ModelFingerprint::of(new),
            layers,
            structure_compatible,
        }
    }

    /// Fingerprint of the old checkpoint.
    pub fn old_fingerprint(&self) -> ModelFingerprint {
        self.old_fingerprint
    }

    /// Fingerprint of the new checkpoint.
    pub fn new_fingerprint(&self) -> ModelFingerprint {
        self.new_fingerprint
    }

    /// Per-layer deltas over the common layer prefix of the two networks.
    pub fn layers(&self) -> &[LayerDelta] {
        &self.layers
    }

    /// Whether the two checkpoints are bit-identical end to end.
    pub fn is_identical(&self) -> bool {
        self.old_fingerprint == self.new_fingerprint
    }

    /// Whether any layer **up to and including** `cut_layer` changed (or the
    /// architectures are not comparable). A changed head moves the cut-layer
    /// activations, so envelopes must be refit — but the *tail obligations*
    /// are untouched as long as the tail is identical: the verified premise
    /// quantifies over the start region, not over head outputs.
    pub fn head_changed(&self, cut_layer: usize) -> bool {
        if !self.structure_compatible {
            return true;
        }
        self.layers
            .iter()
            .take_while(|d| d.index <= cut_layer)
            .any(|d| !d.identical)
    }

    /// Whether every layer **after** `cut_layer` is bit-identical (and the
    /// architectures are comparable) — the precondition for verbatim verdict
    /// reuse.
    pub fn tail_identical(&self, cut_layer: usize) -> bool {
        self.structure_compatible
            && self
                .layers
                .iter()
                .skip_while(|d| d.index <= cut_layer)
                .all(|d| d.identical)
    }

    /// The weight-hull absorption check: propagates `region` through the
    /// *interval-weighted* tail (every parameter replaced by the hull of its
    /// old and new values) and reports whether the resulting output box
    /// refutes `risk` with strict slack `slack`.
    ///
    /// Returns `true` only when **no** point of the region can satisfy the
    /// risk condition under *any* tail whose parameters lie in the hull —
    /// in particular under the new checkpoint's tail — so a prior `Safe`
    /// verdict carries over. Conservative `false` whenever a changed tail
    /// layer is not hull-representable (kind or dimension mismatch, changed
    /// convolution / pooling / activation layers).
    pub fn tail_absorbs(
        &self,
        cut_layer: usize,
        region: &BoxDomain,
        risk: &RiskCondition,
        slack: f64,
    ) -> bool {
        let Some(out) = self.hull_tail_output(cut_layer, region) else {
            return false;
        };
        refutes(&out, risk, slack)
    }

    /// Classifies every layer relative to `cut_layer` for one obligation
    /// (its start `region` and `risk`): identical layers are
    /// [`LayerClass::Identical`]; changed layers at or before the cut are
    /// [`LayerClass::Changed`] (head changes never absorb — they move the
    /// region itself); changed tail layers are [`LayerClass::Absorbed`] when
    /// the whole-tail hull check succeeds and [`LayerClass::Changed`]
    /// otherwise.
    pub fn classify_layers(
        &self,
        cut_layer: usize,
        region: &BoxDomain,
        risk: &RiskCondition,
        slack: f64,
    ) -> Vec<LayerClass> {
        let absorbed = self.tail_absorbs(cut_layer, region, risk, slack);
        self.layers
            .iter()
            .map(|d| {
                if d.identical {
                    LayerClass::Identical
                } else if d.index > cut_layer && absorbed {
                    LayerClass::Absorbed
                } else {
                    LayerClass::Changed
                }
            })
            .collect()
    }

    /// Interval output of the weight-hull tail over `region`, or `None`
    /// when some changed tail layer is not hull-representable.
    fn hull_tail_output(&self, cut_layer: usize, region: &BoxDomain) -> Option<Vec<Interval>> {
        if !self.structure_compatible {
            return None;
        }
        let mut bounds: Vec<Interval> = region.bounds().to_vec();
        for delta in self.layers.iter().filter(|d| d.index > cut_layer) {
            let old_layer = &self.old.layers()[delta.index];
            let new_layer = &self.new.layers()[delta.index];
            if delta.identical {
                // Exact (still sound) transformer for untouched layers —
                // supports every layer kind, including conv and pooling.
                bounds = BoxDomain::from_intervals(bounds)
                    .apply_layer(new_layer)
                    .to_box();
                continue;
            }
            bounds = hull_apply(old_layer, new_layer, &bounds)?;
        }
        Some(bounds)
    }
}

impl fmt::Display for CheckpointDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let changed = self.layers.iter().filter(|d| !d.identical).count();
        write!(
            f,
            "{} -> {}: {}/{} layers changed",
            self.old_fingerprint,
            self.new_fingerprint,
            changed,
            self.layers.len()
        )
    }
}

/// Whether two layers are structurally comparable: same kind and the same
/// dimensions, differing at most in parameter values.
fn comparable(a: &Layer, b: &Layer) -> bool {
    match (a, b) {
        (Layer::Dense(x), Layer::Dense(y)) => {
            x.input_dim() == y.input_dim() && x.output_dim() == y.output_dim()
        }
        (Layer::Activation(x), Layer::Activation(y)) => {
            std::mem::discriminant(x) == std::mem::discriminant(y)
        }
        (Layer::BatchNorm(x), Layer::BatchNorm(y)) => x.dim() == y.dim(),
        (Layer::Conv2d(x), Layer::Conv2d(y)) => {
            x.input_shape() == y.input_shape()
                && x.kernel() == y.kernel()
                && x.stride() == y.stride()
        }
        (Layer::MaxPool2d(x), Layer::MaxPool2d(y)) => {
            x.input_shape() == y.input_shape() && x.pool() == y.pool()
        }
        (Layer::Flatten(x), Layer::Flatten(y)) => x.shape() == y.shape(),
        _ => false,
    }
}

/// Largest absolute parameter difference between two structurally
/// comparable layers; [`f64::INFINITY`] when they are not comparable.
fn max_param_delta(a: &Layer, b: &Layer) -> f64 {
    if !comparable(a, b) {
        return f64::INFINITY;
    }
    let pairs: Vec<(&[f64], &[f64])> = match (a, b) {
        (Layer::Dense(x), Layer::Dense(y)) => vec![
            (x.weights().as_slice(), y.weights().as_slice()),
            (x.bias().as_slice(), y.bias().as_slice()),
        ],
        (Layer::Conv2d(x), Layer::Conv2d(y)) => vec![
            (x.weights().as_slice(), y.weights().as_slice()),
            (x.bias().as_slice(), y.bias().as_slice()),
        ],
        (Layer::BatchNorm(x), Layer::BatchNorm(y)) => vec![
            (x.gamma().as_slice(), y.gamma().as_slice()),
            (x.beta().as_slice(), y.beta().as_slice()),
            (x.running_mean().as_slice(), y.running_mean().as_slice()),
            (x.running_var().as_slice(), y.running_var().as_slice()),
        ],
        (Layer::Activation(x), Layer::Activation(y)) => {
            return match (x, y) {
                (dpv_nn::Activation::LeakyReLU(sx), dpv_nn::Activation::LeakyReLU(sy)) => {
                    (sx - sy).abs()
                }
                _ => 0.0,
            };
        }
        _ => return 0.0,
    };
    let mut max = 0.0f64;
    for (xs, ys) in pairs {
        for (x, y) in xs.iter().zip(ys) {
            max = max.max((x - y).abs());
        }
    }
    max
}

/// Applies the hull of a changed layer pair to an interval vector, or
/// `None` when the pair is not hull-representable. Only affine layer kinds
/// (dense, batch-norm) admit the interval-weight form; everything else
/// changed must fail absorption conservatively.
fn hull_apply(old: &Layer, new: &Layer, bounds: &[Interval]) -> Option<Vec<Interval>> {
    match (old, new) {
        (Layer::Dense(x), Layer::Dense(y)) => {
            if x.input_dim() != bounds.len() {
                return None;
            }
            let mut out = Vec::with_capacity(x.output_dim());
            for r in 0..x.output_dim() {
                let mut acc = hull(x.bias()[r], y.bias()[r]);
                for (c, bound) in bounds.iter().enumerate() {
                    let w = hull(x.weights()[(r, c)], y.weights()[(r, c)]);
                    acc = acc.add(&bound.mul(&w));
                }
                out.push(acc);
            }
            Some(out)
        }
        (Layer::BatchNorm(x), Layer::BatchNorm(y)) => {
            if x.dim() != bounds.len() {
                return None;
            }
            let (ax, bx) = x.affine_form();
            let (ay, by) = y.affine_form();
            let out = bounds
                .iter()
                .enumerate()
                .map(|(i, b)| b.mul(&hull(ax[i], ay[i])).add(&hull(bx[i], by[i])))
                .collect();
            Some(out)
        }
        _ => None,
    }
}

fn hull(a: f64, b: f64) -> Interval {
    Interval::new(a.min(b), a.max(b))
}

/// Whether the output box refutes the risk condition with strict slack:
/// some inequality of the conjunction cannot hold anywhere in the box.
/// An empty conjunction is vacuously satisfiable — never refuted.
fn refutes(bounds: &[Interval], risk: &RiskCondition, slack: f64) -> bool {
    let inequalities = risk.inequalities();
    if inequalities.is_empty() {
        return false;
    }
    inequalities.iter().any(|ineq| {
        if ineq.coeffs.len() > bounds.len() {
            return false;
        }
        let mut acc = Interval::point(0.0);
        for (i, &coeff) in ineq.coeffs.iter().enumerate() {
            acc = acc.add(&bounds[i].scale(coeff));
        }
        match ineq.op {
            OutputOp::Ge => acc.hi < ineq.rhs - slack,
            OutputOp::Le => acc.lo > ineq.rhs + slack,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpv_nn::{Activation, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const CUT: usize = 1;

    /// 3 → 4 → ReLU → 2: cut after the ReLU, tail = one dense layer.
    fn checkpoint(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .build()
    }

    fn perturb_tail(net: &Network, eps: f64) -> Network {
        let mut out = net.clone();
        if let Layer::Dense(d) = &mut out.layers_mut()[2] {
            for r in 0..d.output_dim() {
                for c in 0..d.input_dim() {
                    d.weights_mut()[(r, c)] += eps;
                }
            }
        } else {
            panic!("layer 2 is dense by construction");
        }
        out
    }

    fn perturb_head(net: &Network, eps: f64) -> Network {
        let mut out = net.clone();
        if let Layer::Dense(d) = &mut out.layers_mut()[0] {
            d.weights_mut()[(0, 0)] += eps;
        } else {
            panic!("layer 0 is dense by construction");
        }
        out
    }

    /// `out[0] ≥ rhs` — unreachable for large rhs on a bounded region.
    fn risk(rhs: f64) -> RiskCondition {
        RiskCondition::new("test-risk").output_ge(0, rhs)
    }

    fn region() -> BoxDomain {
        BoxDomain::uniform(4, -1.0, 1.0)
    }

    #[test]
    fn identical_checkpoints_diff_as_identical() {
        let a = checkpoint(3);
        let diff = CheckpointDiff::between(&a, &a.clone());
        assert!(diff.is_identical());
        assert!(diff.tail_identical(CUT));
        assert!(!diff.head_changed(CUT));
        assert!(diff.layers().iter().all(|d| d.identical));
        assert!(diff.layers().iter().all(|d| d.max_abs_delta == 0.0));
    }

    #[test]
    fn head_perturbation_keeps_tail_identical() {
        let a = checkpoint(3);
        let b = perturb_head(&a, 0.5);
        let diff = CheckpointDiff::between(&a, &b);
        assert!(!diff.is_identical());
        assert!(diff.head_changed(CUT));
        assert!(diff.tail_identical(CUT));
        assert!((diff.layers()[0].max_abs_delta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_tail_perturbation_is_absorbed_for_unreachable_risk() {
        let a = checkpoint(3);
        let b = perturb_tail(&a, 1e-6);
        let diff = CheckpointDiff::between(&a, &b);
        assert!(!diff.tail_identical(CUT));
        // |out[0]| is bounded by roughly Σ|w| + |bias| ≈ a few units on this
        // region; rhs = 500 leaves orders of magnitude of slack.
        assert!(diff.tail_absorbs(CUT, &region(), &risk(500.0), 1e-9));
        let classes = diff.classify_layers(CUT, &region(), &risk(500.0), 1e-9);
        assert_eq!(classes[0], LayerClass::Identical);
        assert_eq!(classes[1], LayerClass::Identical);
        assert_eq!(classes[2], LayerClass::Absorbed);
    }

    #[test]
    fn huge_tail_perturbation_is_not_absorbed() {
        let a = checkpoint(3);
        // eps = 1000 pushes the hull output interval across rhs = 500.
        let b = perturb_tail(&a, 1000.0);
        let diff = CheckpointDiff::between(&a, &b);
        assert!(!diff.tail_absorbs(CUT, &region(), &risk(500.0), 1e-9));
        let classes = diff.classify_layers(CUT, &region(), &risk(500.0), 1e-9);
        assert_eq!(classes[2], LayerClass::Changed);
    }

    #[test]
    fn absorption_boundary_tracks_the_slack_margin() {
        let a = checkpoint(3);
        let b = perturb_tail(&a, 1e-6);
        let diff = CheckpointDiff::between(&a, &b);
        // The hull output's upper bound is some finite u << 500. A slack
        // just below (500 - u) still refutes; a slack above it must not.
        assert!(diff.tail_absorbs(CUT, &region(), &risk(500.0), 1.0));
        assert!(!diff.tail_absorbs(CUT, &region(), &risk(500.0), 1e9));
    }

    #[test]
    fn reachable_risk_is_never_absorbed() {
        let a = checkpoint(3);
        let b = perturb_tail(&a, 1e-6);
        let diff = CheckpointDiff::between(&a, &b);
        // rhs = -500: every point of the region satisfies out[0] ≥ -500, so
        // no interval argument can refute it.
        assert!(!diff.tail_absorbs(CUT, &region(), &risk(-500.0), 1e-9));
    }

    #[test]
    fn architecture_mismatch_is_conservative() {
        let a = checkpoint(3);
        let mut rng = StdRng::seed_from_u64(3);
        let b = NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::Tanh) // kind change at the cut boundary
            .dense(2, &mut rng)
            .build();
        let diff = CheckpointDiff::between(&a, &b);
        assert!(diff.head_changed(CUT));
        assert!(!diff.tail_identical(CUT));
        assert!(!diff.tail_absorbs(CUT, &region(), &risk(500.0), 1e-9));
        assert_eq!(diff.layers()[1].max_abs_delta, f64::INFINITY);
    }

    #[test]
    fn changed_activation_in_tail_blocks_absorption() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = NetworkBuilder::new(3)
            .dense(4, &mut rng)
            .activation(Activation::ReLU)
            .dense(2, &mut rng)
            .activation(Activation::LeakyReLU(0.1))
            .build();
        let mut b = a.clone();
        b.layers_mut()[3] = Layer::Activation(Activation::LeakyReLU(0.2));
        let diff = CheckpointDiff::between(&a, &b);
        // The activation pair is comparable (same discriminant) but not
        // hull-representable — absorption must fail conservatively even
        // though the risk is wildly unreachable.
        assert!(!diff.tail_absorbs(CUT, &region(), &risk(500.0), 1e-9));
        assert!((diff.layers()[3].max_abs_delta - 0.1).abs() < 1e-12);
    }
}

//! Cross-crate integration tests: the full pipeline from synthetic scenes to
//! verification verdicts, exercised through the public facade.

use direct_perception_verify::core::{
    AssumeGuarantee, Characterizer, CharacterizerConfig, InputProperty, RiskCondition, Verdict,
    VerificationProblem, VerificationStrategy, Workflow, WorkflowConfig,
};
use direct_perception_verify::monitor::{ActivationEnvelope, RuntimeMonitor};
use direct_perception_verify::nn::{evaluate_loss, LossKind};
use direct_perception_verify::scenegen::{
    property_examples, render_scene, OddSampler, PropertyKind, SceneParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_config() -> WorkflowConfig {
    WorkflowConfig {
        training_samples: 120,
        characterizer_samples: 80,
        validation_samples: 60,
        perception_epochs: 10,
        characterizer: CharacterizerConfig {
            hidden: vec![8],
            epochs: 40,
            ..CharacterizerConfig::small()
        },
        ..WorkflowConfig::small()
    }
}

#[test]
fn perception_training_learns_the_affordance_better_than_a_constant() {
    let workflow = Workflow::new(tiny_config());
    let outcome = workflow.run().unwrap();
    // A fresh test set from a different seed.
    let test = workflow.perception_dataset(80, 2024).unwrap();
    let loss = evaluate_loss(&outcome.perception, &test, LossKind::Mse);
    // The constant-zero predictor has MSE equal to the mean squared target.
    let zero_loss: f64 = test
        .targets()
        .iter()
        .map(|t| t.dot(t) / t.len() as f64)
        .sum::<f64>()
        / test.len() as f64;
    assert!(
        loss < zero_loss,
        "trained network ({loss:.4}) should beat the zero predictor ({zero_loss:.4})"
    );
}

#[test]
fn trained_network_steers_in_the_direction_of_the_bend() {
    let outcome = Workflow::new(tiny_config()).run().unwrap();
    let scene_config = tiny_config().scene;
    let right = render_scene(&SceneParams::nominal().with_curvature(0.9), &scene_config);
    let left = render_scene(&SceneParams::nominal().with_curvature(-0.9), &scene_config);
    let right_out = outcome.perception.forward(&right);
    let left_out = outcome.perception.forward(&left);
    assert!(
        right_out[0] > left_out[0],
        "right bend ({}) should suggest steering further right than a left bend ({})",
        right_out[0],
        left_out[0]
    );
}

#[test]
fn safe_verdicts_have_no_sampled_counterexample() {
    // Soundness spot check: when the verifier says SAFE under the envelope,
    // no tested in-ODD image that satisfies φ may trigger ψ.
    let config = tiny_config();
    let scene_config = config.scene;
    let outcome = Workflow::new(config).run().unwrap();
    let e1 = &outcome.experiments[0];
    let ag_outcome = e1.outcomes.last().unwrap();
    if !ag_outcome.verdict.is_safe() {
        // The tiny training budget occasionally fails to prove E1; the unit
        // tests in dpv-core cover the provable case deterministically.
        return;
    }
    // Extract the threshold from the experiment description: ψ is
    // "offset <= far_left" with far_left below the envelope minimum, so any
    // in-ODD φ-satisfying image must produce an output above it.
    let mut rng = StdRng::seed_from_u64(5);
    let sampler = OddSampler::new(scene_config);
    for _ in 0..100 {
        let scene = sampler.sample_where(&mut rng, |s| {
            s.curvature >= scene_config.strong_bend_threshold
        });
        let image = render_scene(&scene, &scene_config);
        let activation = outcome.perception.activation_at(outcome.cut_layer, &image);
        if outcome.envelope.contains(&activation, 1e-9)
            && outcome.bend_characterizer.decide_activation(&activation)
        {
            let output = outcome.perception.forward(&image);
            // far_left was chosen strictly below the envelope's reachable
            // outputs, so -1.5 is a conservative stand-in for the check.
            assert!(
                output[0] > -1.5,
                "sampled counterexample contradicts the SAFE verdict"
            );
        }
    }
}

#[test]
fn unsafe_verdicts_are_confirmed_by_concrete_execution() {
    let outcome = Workflow::new(tiny_config()).run().unwrap();
    let perception = outcome.perception.clone();
    let cut = outcome.cut_layer;
    let characterizer = outcome.bend_characterizer.clone();
    // A risk condition that is trivially reachable: output0 >= -10.
    let risk = RiskCondition::new("very weak").output_ge(0, -10.0);
    let problem = VerificationProblem::new(perception, cut, characterizer, risk).unwrap();
    let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope: outcome.envelope.clone(),
        use_difference_constraints: true,
    });
    let result = problem.verify(&strategy).unwrap();
    match &result.verdict {
        Verdict::Unsafe(ce) => {
            assert!(problem.confirm_counterexample(&strategy, ce, 1e-4).unwrap());
        }
        other => panic!("expected a counterexample for a trivially reachable risk, got {other:?}"),
    }
}

#[test]
fn monitor_accepts_training_data_and_flags_extreme_scenes() {
    let config = tiny_config();
    let scene_config = config.scene;
    let outcome = Workflow::new(config).run().unwrap();
    let monitor = RuntimeMonitor::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.envelope.clone(),
    )
    .unwrap();

    // Training-style scenes (same generator seed family) are mostly accepted.
    assert!(
        outcome.monitor_in_odd_rate > 0.5,
        "in-ODD acceptance {}",
        outcome.monitor_in_odd_rate
    );

    // A scene far outside the ODD (triple curvature, heavy noise, darkness).
    let mut extreme = SceneParams::nominal().with_curvature(3.0);
    extreme.noise = 0.5;
    extreme.lighting = 0.1;
    let image = render_scene(&extreme, &scene_config);
    let _ = monitor.check(&image);
    // Whether this particular frame is flagged depends on the trained
    // network, but the aggregate detection measured by the workflow should
    // exceed chance.
    assert!(
        outcome.monitor_out_of_odd_detection > 0.2,
        "out-of-ODD detection {}",
        outcome.monitor_out_of_odd_detection
    );
}

#[test]
fn characterizer_for_unrelated_property_stays_near_chance_at_late_layers() {
    let config = tiny_config();
    let scene_config = config.scene;
    let cut = config.cut_layer;
    let outcome = Workflow::new(config).run().unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let train = property_examples(&scene_config, PropertyKind::AdjacentTraffic, 120, &mut rng);
    let test = property_examples(&scene_config, PropertyKind::AdjacentTraffic, 120, &mut rng);
    let characterizer = Characterizer::train(
        InputProperty::new("adjacent_traffic", "vehicle in the adjacent lane"),
        &outcome.perception,
        cut,
        &train,
        &CharacterizerConfig::small(),
        &mut rng,
    )
    .unwrap();
    let accuracy = characterizer.accuracy(&outcome.perception, &test);
    assert!(
        accuracy < 0.85,
        "the information bottleneck should keep the unrelated property hard: accuracy {accuracy}"
    );
}

#[test]
fn statistical_guarantee_is_consistent_with_the_confusion_table() {
    let outcome = Workflow::new(tiny_config()).run().unwrap();
    let table = outcome.statistical.table();
    let sum = table.alpha + table.beta + table.gamma + table.delta;
    assert!((sum - 1.0).abs() < 1e-9);
    assert!((outcome.statistical.guarantee() - (1.0 - table.gamma)).abs() < 1e-12);
}

#[test]
fn envelope_contains_every_training_activation_via_facade() {
    let config = tiny_config();
    let outcome = Workflow::new(config.clone()).run().unwrap();
    // Regenerate the same training bundle the workflow used (same seed
    // derivation) and check containment — the envelope is built from exactly
    // these images.
    let generator = direct_perception_verify::scenegen::GeneratorConfig {
        scene: config.scene,
        samples: config.training_samples,
        seed: config.seed ^ 0x11,
        threads: 1,
    };
    let bundle = direct_perception_verify::scenegen::DatasetBundle::generate(&generator);
    for image in &bundle.images {
        let activation = outcome.perception.activation_at(outcome.cut_layer, image);
        assert!(outcome.envelope.contains(&activation, 1e-9));
    }
    // And an envelope rebuilt from those activations matches dimensions.
    let rebuilt = ActivationEnvelope::from_inputs(
        &outcome.perception,
        outcome.cut_layer,
        &bundle.images,
        0.0,
    )
    .unwrap();
    assert_eq!(rebuilt.dim(), outcome.envelope.dim());
}

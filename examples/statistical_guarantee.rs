//! Table I: the statistical guarantee `1 − γ` when the characterizer is
//! imperfect (Section III of the paper).
//!
//! For each input property, estimate the joint probabilities
//! (α, β, γ, 1−α−β−γ) of the characterizer decision versus the ground
//! truth on held-out data, and report the resulting statistical guarantee
//! together with the footnote-4 side condition (are the missed examples at
//! least concretely safe?).
//!
//! ```bash
//! cargo run --release --example statistical_guarantee
//! ```

use direct_perception_verify::core::{
    Characterizer, CharacterizerConfig, InputProperty, RiskCondition, StatisticalAnalysis,
    Workflow, WorkflowConfig,
};
use direct_perception_verify::scenegen::{property_examples, PropertyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WorkflowConfig {
        training_samples: 300,
        perception_epochs: 20,
        ..WorkflowConfig::small()
    };
    let scene = config.scene;
    let cut = config.cut_layer;
    println!("training the perception network ...");
    let outcome = Workflow::new(config).run()?;
    let perception = outcome.perception.clone();

    // ψ used for the footnote-4 check: "suggest steering to the far left".
    let risk = RiskCondition::new("steer far left").output_le(0, -0.8);

    let mut rng = StdRng::seed_from_u64(2024);
    println!("\n=== Table I per property (validation n = 300) ===\n");
    for property in [
        PropertyKind::BendsRight,
        PropertyKind::BendsLeft,
        PropertyKind::Straight,
        PropertyKind::AdjacentTraffic,
    ] {
        let train = property_examples(&scene, property, 260, &mut rng);
        let validation = property_examples(&scene, property, 300, &mut rng);
        let characterizer = Characterizer::train(
            InputProperty::new(property.name(), "scene-oracle property"),
            &perception,
            cut,
            &train,
            &CharacterizerConfig::default(),
            &mut rng,
        )?;
        let analysis =
            StatisticalAnalysis::estimate(&perception, &characterizer, &risk, &validation)?;
        println!("property: {}", property.name());
        println!("{}", analysis.table().render());
        println!(
            "footnote-4 side condition (missed-but-unsafe examples): {}\n",
            if analysis.missed_examples_are_safe() {
                "satisfied (0 unsafe misses)".to_string()
            } else {
                format!("violated ({} unsafe misses)", analysis.unsafe_misses())
            }
        );
    }
    Ok(())
}

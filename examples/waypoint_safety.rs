//! Experiments E1/E2/E4: verify waypoint-safety properties of the trained
//! direct-perception network under different abstraction strategies, and
//! sweep the risk threshold to locate the provability crossover.
//!
//! ```bash
//! cargo run --release --example waypoint_safety
//! ```

use direct_perception_verify::core::{
    AssumeGuarantee, DomainKind, RiskCondition, VerificationProblem, VerificationStrategy,
    Workflow, WorkflowConfig,
};
use direct_perception_verify::monitor::ActivationEnvelope;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WorkflowConfig {
        training_samples: 250,
        characterizer_samples: 250,
        validation_samples: 150,
        perception_epochs: 18,
        ..WorkflowConfig::small()
    };
    println!("training perception network + bend characterizer ...");
    let outcome = Workflow::new(config).run()?;
    let perception = outcome.perception.clone();
    let cut = outcome.cut_layer;
    let characterizer = outcome.bend_characterizer.clone();
    let envelope: ActivationEnvelope = outcome.envelope.clone();

    let strategies: Vec<(&str, VerificationStrategy)> = vec![
        (
            "Lemma 1 (huge box)",
            VerificationStrategy::LayerAbstraction { bound: 1000.0 },
        ),
        (
            "Lemma 2 (interval AI)",
            VerificationStrategy::AbstractInterpretation {
                domain: DomainKind::Box,
            },
        ),
        (
            "assume-guarantee (box)",
            VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: envelope.clone(),
                use_difference_constraints: false,
            }),
        ),
        (
            "assume-guarantee (box+diff)",
            VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
                envelope: envelope.clone(),
                use_difference_constraints: true,
            }),
        ),
    ];

    println!("\n=== risk-threshold sweep: ψ = (waypoint offset ≤ t), φ = bends right ===");
    println!(
        "{:<10} {:<26} {:<10} {:>9} {:>9}",
        "t", "strategy", "verdict", "binaries", "seconds"
    );
    for t in [-2.0, -1.5, -1.0, -0.6, -0.3, 0.0] {
        let risk = RiskCondition::new("steer far left").output_le(0, t);
        let problem =
            VerificationProblem::new(perception.clone(), cut, characterizer.clone(), risk)?;
        for (name, strategy) in &strategies {
            let result = problem.verify(strategy)?;
            let verdict = if result.verdict.is_safe() {
                "SAFE"
            } else if result.verdict.is_unsafe() {
                "unsafe"
            } else {
                "unknown"
            };
            println!(
                "{:<10.2} {:<26} {:<10} {:>9} {:>9.3}",
                t, name, verdict, result.num_binaries, result.solve_seconds
            );
        }
    }

    println!("\n=== E2: ψ = steering straight while the road bends right ===");
    let straight = RiskCondition::new("steer straight")
        .output_le(0, 0.1)
        .output_ge(0, -0.1);
    let problem = VerificationProblem::new(perception, cut, characterizer, straight)?;
    let strategy = VerificationStrategy::AssumeGuarantee(AssumeGuarantee {
        envelope,
        use_difference_constraints: true,
    });
    let result = problem.verify(&strategy)?;
    println!("{}", result.summary());
    if let direct_perception_verify::core::Verdict::Unsafe(ce) = &result.verdict {
        println!(
            "counterexample: cut-layer activation maps to output {:?} with characterizer logit {:?}",
            ce.output.as_slice(),
            ce.logit
        );
    }
    Ok(())
}

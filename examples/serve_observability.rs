//! Observability tour of the resident obligation server: serve a few
//! requests through an **enabled tracer**, inject a transient fault and
//! a panic, then print a human-readable report of everything the trace
//! layer recorded — warm-start effectiveness, retry and quarantine
//! counters, per-obligation timelines, and a Prometheus excerpt.
//!
//! ```bash
//! cargo run --release --example serve_observability
//! ```

use direct_perception_verify::absint::BoxDomain;
use direct_perception_verify::core::{Characterizer, InputProperty, RiskCondition, StartRegion};
use direct_perception_verify::lp::SolveStats;
use direct_perception_verify::nn::{Activation, Network, NetworkBuilder};
use direct_perception_verify::serve::{
    FaultKind, FaultPlan, ObligationServer, RegionSpec, RequestReport, ServeConfig,
    VerificationRequest,
};
use direct_perception_verify::trace::{TraceConfig, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CUT: usize = 2;
const CUT_WIDTH: usize = 4;

fn perception() -> Network {
    let mut rng = StdRng::seed_from_u64(17);
    NetworkBuilder::new(3)
        .dense(6, &mut rng)
        .activation(Activation::ReLU)
        .dense(CUT_WIDTH, &mut rng)
        .activation(Activation::ReLU)
        .dense(2, &mut rng)
        .build()
}

fn characterizer() -> Characterizer {
    let mut rng = StdRng::seed_from_u64(17 ^ 0xc4a2);
    let head = NetworkBuilder::new(CUT_WIDTH)
        .dense(3, &mut rng)
        .activation(Activation::ReLU)
        .dense(1, &mut rng)
        .build();
    Characterizer::from_network(
        InputProperty::new("p", "synthetic property"),
        CUT,
        head,
        0.9,
    )
    .expect("characterizer fixture")
}

fn request() -> VerificationRequest {
    VerificationRequest {
        perception: perception(),
        cut_layer: CUT,
        characterizer: characterizer(),
        risks: vec![
            RiskCondition::new("unreachable").output_ge(0, 500.0),
            RiskCondition::new("reachable").output_ge(0, -500.0),
        ],
        region: RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -1.0, 1.0))),
        subdivision: 2,
        deadline: None,
    }
}

/// Sums the per-obligation solver statistics of one report.
fn aggregate_solver_stats(report: &RequestReport) -> SolveStats {
    let mut total = SolveStats::default();
    for outcome in &report.obligations {
        total.warm_solves += outcome.stats.warm_solves;
        total.cold_solves += outcome.stats.cold_solves;
        total.simplex_iterations += outcome.stats.simplex_iterations;
        total.nodes_explored += outcome.stats.nodes_explored;
        total.nodes_pruned += outcome.stats.nodes_pruned;
    }
    total
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An enabled tracer: per-thread ring buffers plus typed metrics.
    // A builder without a tracer serves identically with
    // every recording call disabled.
    let tracer = Tracer::with_config(TraceConfig::default());
    let server = ObligationServer::builder()
        .config(ServeConfig::with_workers(2))
        .tracer(tracer)
        .build();

    println!("== request 1: cold caches ==");
    let cold = server.serve(&request())?;
    println!("{}", cold.summary());
    let cold_solver = aggregate_solver_stats(&cold);
    println!(
        "solver: {} LP solves, warm hit rate {:.0}% (cold caches, so ~0%)",
        cold_solver.warm_solves + cold_solver.cold_solves,
        100.0 * cold_solver.warm_hit_rate()
    );

    println!("\n== request 2: warm caches, transient fault + panic injected ==");
    let mut plan = FaultPlan::new();
    plan.inject(2, FaultKind::TransientExhaust);
    plan.inject(5, FaultKind::Panic);
    server.set_fault_plan(plan);
    // A fresh region exercises the warmed template/basis caches instead
    // of the dedup cache.
    let mut warm_request = request();
    warm_request.region =
        RegionSpec::Single(StartRegion::Box(BoxDomain::uniform(CUT_WIDTH, -0.9, 1.1)));
    // The injected panic is caught by the server's isolation layer;
    // silence the default hook so it doesn't splatter the demo output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let warm = server.serve(&warm_request)?;
    std::panic::set_hook(default_hook);
    println!("{}", warm.summary());
    let warm_solver = aggregate_solver_stats(&warm);
    println!(
        "solver: {} LP solves, warm hit rate {:.0}%",
        warm_solver.warm_solves + warm_solver.cold_solves,
        100.0 * warm_solver.warm_hit_rate()
    );

    println!("\n== server statistics ==");
    let stats = server.stats();
    println!("{}", stats.summary());
    println!(
        "resilience: {} retries ({} rescued), {} panics caught, {} quarantined",
        stats.retries, stats.retry_successes, stats.worker_panics, stats.quarantined
    );
    println!(
        "caches: templates {}‰ hit, bases {}‰ hit, dedup {}‰",
        stats.template_hit_rate_permille(),
        stats.snapshots.hit_rate_permille(),
        stats.dedup_rate_permille()
    );

    println!("\n== per-obligation timeline (request 2) ==");
    match &warm.timeline {
        Some(timeline) => print!("{}", timeline.summary()),
        None => println!("(tracing disabled — no timeline)"),
    }

    println!("== trace snapshot ==");
    let snapshot = server.trace_snapshot();
    println!(
        "{} recording calls, {} dropped events",
        snapshot.record_ops,
        snapshot.dropped_events()
    );
    for name in [
        "warm-lp-solves",
        "cold-lp-solves",
        "simplex-iterations",
        "bnb-nodes",
        "retries",
        "worker-panics",
        "quarantined",
        "template-hits",
        "snapshot-hits",
    ] {
        println!("  {name:<20} {}", snapshot.counter(name));
    }

    println!("\n== Prometheus excerpt ==");
    let prometheus = server.trace_snapshot().to_prometheus();
    for line in prometheus.lines().filter(|l| {
        l.contains("queue_depth") || l.contains("retries") || l.contains("solve_ns_count")
    }) {
        println!("{line}");
    }

    Ok(())
}

//! Quickstart: run the complete verification workflow of the paper on the
//! synthetic ODD and print the resulting report (Figure 1 end to end).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use direct_perception_verify::core::{Workflow, WorkflowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slightly larger run than the unit-test configuration so the trained
    // networks are meaningful, but still a laptop-scale couple of seconds.
    let config = WorkflowConfig {
        training_samples: 300,
        characterizer_samples: 300,
        validation_samples: 200,
        perception_epochs: 20,
        ..WorkflowConfig::small()
    };

    println!("training the direct-perception network and characterizers ...");
    let outcome = Workflow::new(config).run()?;
    println!("{}", outcome.report());

    // Highlight the paper's headline findings.
    let e1 = &outcome.experiments[0];
    let assume_guarantee = e1
        .outcomes
        .last()
        .expect("E1 always compares at least one strategy");
    println!(
        "headline: '{}' is {} under the monitored envelope.",
        e1.description,
        if assume_guarantee.verdict.is_safe() {
            "conditionally PROVED"
        } else {
            "NOT proved"
        }
    );
    Ok(())
}

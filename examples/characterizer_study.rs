//! Experiment E3: which input properties *can* be characterised from
//! close-to-output activations?
//!
//! The paper observes (via the information-bottleneck argument) that
//! properties unrelated to the network output — e.g. "traffic participants
//! in adjacent lanes" — cannot be decided from close-to-output layers: the
//! trained characterizer behaves like a fair coin. This example trains one
//! characterizer per property and per candidate cut layer and prints the
//! held-out accuracy matrix.
//!
//! ```bash
//! cargo run --release --example characterizer_study
//! ```

use direct_perception_verify::core::{
    Characterizer, CharacterizerConfig, InputProperty, Workflow, WorkflowConfig,
};
use direct_perception_verify::scenegen::{property_examples, PropertyKind, SceneConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The diverse ODD keeps every property — including the occlusion, rain
    // and dashed-lane scenario classes — satisfiable for balanced example
    // generation.
    let config = WorkflowConfig {
        scene: SceneConfig::diverse(),
        training_samples: 300,
        perception_epochs: 20,
        ..WorkflowConfig::small()
    };
    let scene = config.scene;
    println!("training the perception network ...");
    let outcome = Workflow::new(config).run()?;
    let perception = outcome.perception.clone();

    // Candidate cut layers: after the conv block, after the first dense
    // block, and the close-to-output layer used for verification.
    let cut_layers = [2usize, 4, 6];
    let char_config = CharacterizerConfig {
        hidden: vec![12],
        epochs: 100,
        ..CharacterizerConfig::default()
    };

    println!("\nheld-out characterizer accuracy (rows: property, cols: cut layer)\n");
    print!("{:<20}", "property");
    for cut in cut_layers {
        print!(
            "  layer {cut:>2} (dim {:>3})",
            perception.layer_output_dim(cut)
        );
    }
    println!();

    let mut rng = StdRng::seed_from_u64(7);
    for property in PropertyKind::ALL {
        let train_examples = property_examples(&scene, property, 240, &mut rng);
        let test_examples = property_examples(&scene, property, 160, &mut rng);
        print!("{:<20}", property.name());
        for cut in cut_layers {
            let characterizer = Characterizer::train(
                InputProperty::new(property.name(), "scene-oracle property"),
                &perception,
                cut,
                &train_examples,
                &char_config,
                &mut rng,
            )?;
            let accuracy = characterizer.accuracy(&perception, &test_examples);
            print!("  {accuracy:>18.3}");
        }
        let related = if property.is_output_related() {
            "output-related"
        } else {
            "output-unrelated (expect ~0.5 at late layers)"
        };
        println!("   [{related}]");
    }

    println!(
        "\nExpected shape (paper, Section V): curvature-derived properties stay near 1.0 even at\n\
         the close-to-output layer, while properties the affordance does not depend on degrade\n\
         towards coin flipping as the cut moves towards the output (information bottleneck)."
    );
    Ok(())
}

//! Experiment E5: the runtime monitor guarding the assume-guarantee proof.
//!
//! Builds the activation envelope from training data, then measures
//! (a) acceptance of fresh in-ODD frames, (b) detection of out-of-ODD frames
//! (sharper curvature, heavy noise, darkness, large lateral offsets),
//! (c) the per-frame overhead of the containment check, which the paper
//! argues is a single vectorised `diff` + compare, and (d) the detection
//! rate *per out-of-ODD violation class* — the `OddViolation` taxonomy
//! (extreme curvature, blackout, full occlusion, downpour, sensor dropout,
//! lane departure), so a monitor that is sharp on blackouts but blind to
//! occlusions cannot hide behind one aggregate rate.
//!
//! ```bash
//! cargo run --release --example runtime_monitoring
//! ```

use std::time::Instant;

use direct_perception_verify::core::{Workflow, WorkflowConfig};
use direct_perception_verify::monitor::RuntimeMonitor;
use direct_perception_verify::scenegen::{render_scene, OddSampler, OddViolation, SceneConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The diverse ODD switches every scenario dimension on (occlusion,
    // rain, dashed lanes, bimodal curvature), so the taxonomy table below
    // measures the monitor against the full scenario space.
    let config = WorkflowConfig {
        scene: SceneConfig::diverse(),
        training_samples: 300,
        perception_epochs: 18,
        ..WorkflowConfig::small()
    };
    let scene_config = config.scene;
    println!("training the perception network and building the envelope ...");
    let outcome = Workflow::new(config).run()?;

    let monitor = RuntimeMonitor::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.envelope.clone(),
    )
    .map_err(std::io::Error::other)?;

    let sampler = OddSampler::new(scene_config);
    let mut rng = StdRng::seed_from_u64(99);
    let frames = 400usize;

    // (a) in-ODD acceptance.
    let in_odd_images: Vec<_> = (0..frames)
        .map(|_| render_scene(&sampler.sample_in_odd(&mut rng), &scene_config))
        .collect();
    let accepted = in_odd_images
        .iter()
        .filter(|img| monitor.check(img).is_in_odd())
        .count();

    // (b) out-of-ODD detection.
    let out_odd_images: Vec<_> = (0..frames)
        .map(|_| render_scene(&sampler.sample_out_of_odd(&mut rng), &scene_config))
        .collect();
    let flagged = out_odd_images
        .iter()
        .filter(|img| !monitor.check(img).is_in_odd())
        .count();

    // (c) per-frame overhead: containment check alone (activation given) vs
    // the full perception forward pass.
    let activations: Vec<_> = in_odd_images
        .iter()
        .map(|img| monitor.activation(img))
        .collect();
    let start = Instant::now();
    let mut inside = 0usize;
    for activation in &activations {
        if monitor.classify(activation).is_in_odd() {
            inside += 1;
        }
    }
    let check_only = start.elapsed().as_secs_f64() / activations.len() as f64;
    let start = Instant::now();
    for img in &in_odd_images {
        let _ = outcome.perception.forward(img);
    }
    let forward = start.elapsed().as_secs_f64() / in_odd_images.len() as f64;

    println!(
        "\n=== runtime monitor (envelope: {} samples, dim {}) ===",
        outcome.envelope.sample_count(),
        outcome.envelope.dim()
    );
    println!(
        "in-ODD frames accepted:      {:>6.1} %",
        100.0 * accepted as f64 / frames as f64
    );
    println!(
        "out-of-ODD frames flagged:   {:>6.1} %",
        100.0 * flagged as f64 / frames as f64
    );
    println!(
        "containment check per frame: {:>9.3} µs   ({} frames re-checked, {} inside)",
        check_only * 1e6,
        activations.len(),
        inside
    );
    println!("full forward pass per frame: {:>9.3} µs", forward * 1e6);
    println!(
        "monitor overhead relative to inference: {:.2} %",
        100.0 * check_only / forward.max(1e-12)
    );
    // (d) detection per out-of-ODD violation class: the taxonomy table.
    println!("\n=== out-of-ODD taxonomy: detection per violation class ===");
    println!(
        "{:<20} {:>8} {:>10}   description",
        "class", "frames", "detected"
    );
    let class_frames = 100usize;
    for class in OddViolation::ALL {
        let flagged = (0..class_frames)
            .filter(|_| {
                let image = render_scene(&sampler.sample_violation(class, &mut rng), &scene_config);
                !monitor.check(&image).is_in_odd()
            })
            .count();
        println!(
            "{:<20} {:>8} {:>9.1}%   {}",
            class.name(),
            class_frames,
            100.0 * flagged as f64 / class_frames as f64,
            class.describe()
        );
    }

    println!("\ncumulative statistics: {:?}", monitor.report());
    Ok(())
}

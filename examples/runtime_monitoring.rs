//! Experiment E5: the runtime monitor guarding the assume-guarantee proof.
//!
//! Builds the activation envelope from training data, then measures
//! (a) acceptance of fresh in-ODD frames, (b) detection of out-of-ODD frames
//! (sharper curvature, heavy noise, darkness, large lateral offsets), and
//! (c) the per-frame overhead of the containment check, which the paper
//! argues is a single vectorised `diff` + compare.
//!
//! ```bash
//! cargo run --release --example runtime_monitoring
//! ```

use std::time::Instant;

use direct_perception_verify::core::{Workflow, WorkflowConfig};
use direct_perception_verify::monitor::RuntimeMonitor;
use direct_perception_verify::scenegen::{render_scene, OddSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WorkflowConfig {
        training_samples: 300,
        perception_epochs: 18,
        ..WorkflowConfig::small()
    };
    let scene_config = config.scene;
    println!("training the perception network and building the envelope ...");
    let outcome = Workflow::new(config).run()?;

    let monitor = RuntimeMonitor::new(
        outcome.perception.clone(),
        outcome.cut_layer,
        outcome.envelope.clone(),
    )
    .map_err(std::io::Error::other)?;

    let sampler = OddSampler::new(scene_config);
    let mut rng = StdRng::seed_from_u64(99);
    let frames = 400usize;

    // (a) in-ODD acceptance.
    let in_odd_images: Vec<_> = (0..frames)
        .map(|_| render_scene(&sampler.sample_in_odd(&mut rng), &scene_config))
        .collect();
    let accepted = in_odd_images
        .iter()
        .filter(|img| monitor.check(img).is_in_odd())
        .count();

    // (b) out-of-ODD detection.
    let out_odd_images: Vec<_> = (0..frames)
        .map(|_| render_scene(&sampler.sample_out_of_odd(&mut rng), &scene_config))
        .collect();
    let flagged = out_odd_images
        .iter()
        .filter(|img| !monitor.check(img).is_in_odd())
        .count();

    // (c) per-frame overhead: containment check alone (activation given) vs
    // the full perception forward pass.
    let activations: Vec<_> = in_odd_images
        .iter()
        .map(|img| monitor.activation(img))
        .collect();
    let start = Instant::now();
    let mut inside = 0usize;
    for activation in &activations {
        if monitor.classify(activation).is_in_odd() {
            inside += 1;
        }
    }
    let check_only = start.elapsed().as_secs_f64() / activations.len() as f64;
    let start = Instant::now();
    for img in &in_odd_images {
        let _ = outcome.perception.forward(img);
    }
    let forward = start.elapsed().as_secs_f64() / in_odd_images.len() as f64;

    println!(
        "\n=== runtime monitor (envelope: {} samples, dim {}) ===",
        outcome.envelope.sample_count(),
        outcome.envelope.dim()
    );
    println!(
        "in-ODD frames accepted:      {:>6.1} %",
        100.0 * accepted as f64 / frames as f64
    );
    println!(
        "out-of-ODD frames flagged:   {:>6.1} %",
        100.0 * flagged as f64 / frames as f64
    );
    println!(
        "containment check per frame: {:>9.3} µs   ({} frames re-checked, {} inside)",
        check_only * 1e6,
        activations.len(),
        inside
    );
    println!("full forward pass per frame: {:>9.3} µs", forward * 1e6);
    println!(
        "monitor overhead relative to inference: {:.2} %",
        100.0 * check_only / forward.max(1e-12)
    );
    println!("\ncumulative statistics: {:?}", monitor.report());
    Ok(())
}

//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no access to crates.io, so the
//! workspace vendors a deterministic xoshiro256++ generator behind the same
//! trait names (`Rng`, `RngCore`, `SeedableRng`, `SliceRandom`) and the same
//! `StdRng` entry point. Determinism given a seed is the only distributional
//! property the verification workflow relies on.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa from the top of the word.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Mock generators for tests, mirroring `rand::rngs::mock`.
    pub mod mock {
        use super::RngCore;

        /// Generator yielding `initial`, `initial + increment`, ... — useful
        /// for deterministic tests.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            next: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial` and stepping by
            /// `increment` (wrapping).
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    next: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.next;
                self.next = self.next.wrapping_add(self.increment);
                out
            }
        }
    }

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..4);
            assert!(n < 4);
            let m: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&m));
        }
    }

    #[test]
    fn inclusive_degenerate_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(rng.gen_range(0.25..=0.25), 0.25);
        assert_eq!(rng.gen_range(5..=5), 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}

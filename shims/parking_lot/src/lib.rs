//! Offline stand-in for `parking_lot`. Provides a `Mutex` with the
//! poison-free `lock()` signature the workspace relies on, backed by
//! `std::sync::Mutex` (poisoning is swallowed, matching parking_lot's
//! semantics of simply continuing after a panicking holder).
#![forbid(unsafe_code)]

use std::fmt;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }
}

//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the workspace's no-op derive macros under the usual names so
//! `#[derive(Serialize, Deserialize)]` compiles unchanged. The traits exist
//! as empty markers in case downstream code wants to name them in bounds;
//! no data format is provided (and none is used by the workspace).
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}

//! Offline no-op replacements for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to keep
//! the door open for a real serialization backend, but nothing in the build
//! environment can fetch serde from crates.io. These derives accept the same
//! syntax and expand to nothing; `dpv-nn`'s hand-rolled text format
//! (`crates/nn/src/io.rs`) is the only persistence actually exercised.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

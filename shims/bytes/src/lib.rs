//! Offline stand-in for the `bytes` crate: `BytesMut` (growable write
//! buffer), `Bytes` (cheaply-cloneable immutable view) and the `Buf`/`BufMut`
//! accessor traits, restricted to the little-endian accessors the activation
//! log uses. `Bytes` keeps its backing storage in an `Arc` so `clone` and
//! `slice` are O(1), as with the real crate.
#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::Arc;

/// Read access to a byte cursor, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies out the next `dst.len()` bytes and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Returns `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        f64::from_le_bytes(raw)
    }
}

/// Write access to a byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, value: f64) {
        self.put_slice(&value.to_le_bytes());
    }
}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable shared byte view, mirroring `bytes::Bytes`.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a vector without copying.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for an empty view.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view; `range` is relative to this view.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_and_f64() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_f64_le(-1.5);
        assert_eq!(buf.len(), 12);
        let mut bytes = buf.freeze();
        assert!(bytes.has_remaining());
        assert_eq!(bytes.get_u32_le(), 3);
        assert_eq!(bytes.get_f64_le(), -1.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_is_relative_and_cheap() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0, 1, 2, 3, 4, 5]);
        let bytes = buf.freeze();
        let mid = bytes.slice(2..5);
        assert_eq!(mid.len(), 3);
        let inner = mid.slice(1..2);
        let mut cursor = inner;
        let mut out = [0u8; 1];
        cursor.copy_to_slice(&mut out);
        assert_eq!(out[0], 3);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from_vec(vec![1, 2]).slice(0..3);
    }
}

//! Offline mini property-testing harness.
//!
//! The build environment cannot fetch the real `proptest` crate, so this shim
//! implements the exact subset the workspace's tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, range and
//! `prop::collection::vec` strategies, and the `prop_assert*` macros. Inputs
//! are drawn from a deterministic per-case RNG rather than shrunk on failure;
//! a failing case therefore reports the concrete assertion, not a minimal
//! input, which is an acceptable trade for a dependency-free build.
#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Number-of-elements specification for [`vec`]: an exact size or a
    /// half-open range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a strategy for vectors whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi.max(self.size.lo + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Builds the deterministic RNG for one test case. Public for the macro
/// expansion only.
#[doc(hidden)]
pub fn test_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(0xD1F0_5EED_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Property assertion; identical to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; identical to `assert_eq!` in this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; identical to `assert_ne!` in this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Test-case assumption: a failed assumption skips the current random case
/// (the shim's expansion runs cases in a loop, so this is a plain
/// `continue`). Real proptest additionally re-draws a replacement input;
/// the shim simply moves on to the next seed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(__case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` that runs the body against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The names `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` resolves as in real proptest.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_controls_length(
            fixed in prop::collection::vec(0.0f64..1.0, 7),
            ranged in prop::collection::vec(prop::collection::vec(0u32..5, 2), 3..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((3..6).contains(&ranged.len()));
            prop_assert_ne!(ranged.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn assumptions_skip_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_also_works(x in 1usize..4) {
            prop_assert!((1..4).contains(&x));
        }
    }
}

//! Offline stand-in for the `crossbeam` scoped-thread and work-stealing
//! deque APIs, implemented on top of `std::thread::scope` (stable since
//! 1.63) and mutex-guarded `VecDeque`s. Only the subset the workspace uses
//! is provided: `thread::scope`, `Scope::spawn`, `ScopedJoinHandle::join`,
//! and `deque::{Injector, Worker, Stealer, Steal}`.
//!
//! The deque shim trades crossbeam's lock-free Chase–Lev algorithm for a
//! mutex per queue. The workspace's branch-and-bound workers spend their
//! time in LP solves, not queue operations, so the contention cost is
//! negligible at the scales this repository targets.
#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Crossbeam passes the scope back into the
        /// closure; every call site in this workspace ignores that argument,
        /// so the shim passes `()` instead, which `|_| ...` closures accept.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned.
    /// Unlike crossbeam this can only fail by propagating a panic, so the
    /// `Ok` arm is the only one ever returned.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques, mirroring `crossbeam::deque`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// Returns `true` when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn lock<T>(queue: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A global FIFO injector queue shared by every worker.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steals a task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Returns `true` when the queue is empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }
    }

    /// A worker-local deque. The owner pushes and pops at one end;
    /// [`Stealer`] handles take tasks from the opposite end.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        lifo: bool,
    }

    impl<T> Worker<T> {
        /// A deque whose owner pops the most recently pushed task first
        /// (depth-first order for tree searches).
        pub fn new_lifo() -> Self {
            Self {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                lifo: true,
            }
        }

        /// A deque whose owner pops the oldest task first.
        pub fn new_fifo() -> Self {
            Self {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                lifo: false,
            }
        }

        /// Pushes a task onto the owner's end of the deque.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pops a task from the owner's end of the deque.
        pub fn pop(&self) -> Option<T> {
            let mut queue = lock(&self.queue);
            if self.lifo {
                queue.pop_back()
            } else {
                queue.pop_front()
            }
        }

        /// Returns `true` when the deque is empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Creates a [`Stealer`] handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A handle that steals tasks from the cold end of a [`Worker`] deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the deque.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Returns `true` when the deque is empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| scope.spawn(move |_| part.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn lifo_worker_pops_depth_first_and_steals_breadth_first() {
        let worker: Worker<i32> = Worker::new_lifo();
        let stealer = worker.stealer();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        // Owner pops the most recent task; the stealer takes the oldest.
        assert_eq!(worker.pop(), Some(3));
        assert_eq!(stealer.steal(), Steal::Success(1));
        assert_eq!(worker.pop(), Some(2));
        assert!(worker.is_empty() && stealer.is_empty());
        assert_eq!(stealer.steal(), Steal::Empty);
    }

    #[test]
    fn fifo_worker_pops_in_push_order() {
        let worker: Worker<i32> = Worker::new_fifo();
        worker.push(1);
        worker.push(2);
        assert_eq!(worker.pop(), Some(1));
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), None);
    }

    #[test]
    fn injector_is_fifo_and_shared_across_threads() {
        let injector: Injector<usize> = Injector::new();
        assert!(injector.is_empty());
        for i in 0..100 {
            injector.push(i);
        }
        assert_eq!(injector.len(), 100);
        assert_eq!(injector.steal().success(), Some(0));
        let drained = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut count = 0usize;
                        while injector.steal().success().is_some() {
                            count += 1;
                        }
                        count
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(drained, 99);
        assert!(injector.steal().is_empty());
    }
}

//! Offline stand-in for the `crossbeam` scoped-thread API, implemented on
//! top of `std::thread::scope` (stable since 1.63). Only the subset the
//! workspace uses is provided: `thread::scope`, `Scope::spawn` and
//! `ScopedJoinHandle::join`.
#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Crossbeam passes the scope back into the
        /// closure; every call site in this workspace ignores that argument,
        /// so the shim passes `()` instead, which `|_| ...` closures accept.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned.
    /// Unlike crossbeam this can only fail by propagating a panic, so the
    /// `Ok` arm is the only one ever returned.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| scope.spawn(move |_| part.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot fetch criterion from crates.io, so this shim
//! provides the same surface the workspace's `benches/*.rs` targets use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `black_box`) with a simple mean/min timing loop instead of
//! criterion's statistical machinery. Output is plain text on stdout.
//!
//! Two environment variables make the shim scriptable for CI:
//!
//! * `CRITERION_JSON=<path>` — additionally emit every benchmark result as a
//!   machine-readable JSON document at `<path>`. The file is rewritten after
//!   each result so it is complete even when the process is interrupted.
//! * `CRITERION_SAMPLE_SIZE=<n>` — override the per-benchmark sample count
//!   (used by CI smoke runs to keep bench targets fast).
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so `black_box(...)` behaves as in criterion.
pub use std::hint::black_box;

/// Identifier of a benchmark, optionally parameterised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing helper handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// One finished benchmark, as recorded by the JSON emitter.
#[derive(Debug, Clone)]
struct JsonRecord {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
}

/// Results accumulated for the `CRITERION_JSON` emitter (process-wide, since
/// `criterion_main!` may run several groups).
static JSON_RECORDS: Mutex<Vec<JsonRecord>> = Mutex::new(Vec::new());

fn sample_size_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|raw| raw.parse::<usize>().ok())
        .map(|n| n.max(1))
}

fn json_escape(raw: &str) -> String {
    raw.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Rewrites the JSON report with every record collected so far. Rewriting on
/// each result keeps the file valid JSON at all times, so an interrupted
/// bench run still leaves usable data behind.
fn emit_json(path: &str) {
    let records = match JSON_RECORDS.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"host_cpus\": {cpus},\n"));
    out.push_str("  \"results\": [\n");
    for (i, record) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}}}{comma}\n",
            json_escape(&record.id),
            record.mean_ns,
            record.min_ns,
            record.samples
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(error) = std::fs::write(path, out) {
        eprintln!("criterion shim: cannot write {path}: {error}");
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    println!(
        "{id:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        samples.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        match JSON_RECORDS.lock() {
            Ok(mut records) => records.push(JsonRecord {
                id: id.to_string(),
                mean_ns: mean.as_nanos(),
                min_ns: min.as_nanos(),
                samples: samples.len(),
            }),
            Err(poisoned) => poisoned.into_inner().push(JsonRecord {
                id: id.to_string(),
                mean_ns: mean.as_nanos(),
                min_ns: min.as_nanos(),
                samples: samples.len(),
            }),
        }
        emit_json(&path);
    }
}

/// Records a scalar, non-timing metric (a counter, a rate in permille, …)
/// alongside the benchmark results: printed to stdout and, under
/// `CRITERION_JSON`, emitted as a single-sample record whose `mean_ns` /
/// `min_ns` slots carry the raw value. Real criterion has no equivalent —
/// bench targets using this stay shim-only by construction, which is fine
/// for the CI perf artifacts it exists for (e.g. the warm-start hit rate in
/// `BENCH_e8.json`).
pub fn report_metric(id: impl Into<String>, value: u128) {
    let id = id.into();
    println!("{id:<48} value {value:>12}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let record = JsonRecord {
            id,
            mean_ns: value,
            min_ns: value,
            samples: 1,
        };
        match JSON_RECORDS.lock() {
            Ok(mut records) => records.push(record),
            Err(poisoned) => poisoned.into_inner().push(record),
        }
        emit_json(&path);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim has no fixed measurement budget.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iterations: sample_size_override().unwrap_or(self.sample_size),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        self.run(id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into().id;
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        let mut bencher = Bencher {
            samples: Vec::new(),
            iterations: sample_size_override().unwrap_or(10),
        };
        f(&mut bencher);
        report(&id, &bencher.samples);
        self
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("plain/id"), "plain/id");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn json_emitter_writes_valid_report() {
        let dir = std::env::temp_dir().join("criterion-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        {
            let mut records = match JSON_RECORDS.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            records.clear();
            records.push(JsonRecord {
                id: "group/bench/4".to_string(),
                mean_ns: 1_500,
                min_ns: 1_000,
                samples: 3,
            });
        }
        emit_json(path.to_str().unwrap());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"host_cpus\""));
        assert!(body.contains("\"id\": \"group/bench/4\""));
        assert!(body.contains("\"mean_ns\": 1500"));
        assert!(body.trim_end().ends_with('}'));
        std::fs::remove_file(&path).ok();
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot fetch criterion from crates.io, so this shim
//! provides the same surface the workspace's `benches/*.rs` targets use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `black_box`) with a simple mean/min timing loop instead of
//! criterion's statistical machinery. Output is plain text on stdout.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `black_box(...)` behaves as in criterion.
pub use std::hint::black_box;

/// Identifier of a benchmark, optionally parameterised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing helper handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    println!(
        "{id:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim has no fixed measurement budget.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iterations: self.sample_size,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        self.run(id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into().id;
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        let mut bencher = Bencher {
            samples: Vec::new(),
            iterations: 10,
        };
        f(&mut bencher);
        report(&id, &bencher.samples);
        self
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}

//! `benchgate` — the CI bench-regression gate.
//!
//! Compares a freshly emitted `BENCH_*.json` (the criterion shim's
//! `CRITERION_JSON` output) against the committed baseline and fails when a
//! **metric record** regresses beyond its per-metric tolerance. Only
//! records whose id ends in `-permille` are gated — they are emitted by
//! `criterion::report_metric` and are deterministic (seeded workloads) or
//! slow-moving ratios; raw `mean_ns` timings are informational only, since
//! CI runners vary wildly in speed and core count.
//!
//! ```bash
//! benchgate <baseline.json> <fresh.json>
//! ```
//!
//! Exit status 0 when every gated metric is within tolerance, 1 otherwise
//! (including a metric present in the baseline but missing from the fresh
//! run — a silently dropped metric must not pass CI).
//!
//! ## Tolerance model
//!
//! Every metric id is matched to a [`Gate`]:
//!
//! * `batch-parity-permille` — a **zero-width band at 1000**: the batched
//!   monitor sweep must be verdict-identical to per-frame checking; any
//!   deviation is a correctness bug, not a perf regression.
//! * `k1-parity-permille` — a **band around 1000** with halfwidth 50
//!   (±5%): k = 1 sharding must stay cost-comparable to the monolithic
//!   path in *either* direction. The committed e9 baseline of 1007 means
//!   k = 1 is 0.7% slower — well inside the band; exact parity is not the
//!   contract, the band is.
//! * `*frames-per-sec*` — higher is better with 50% relative slack: these
//!   are absolute throughput records (frames·1000/s), so runner speed does
//!   *not* cancel the way it does for ratios; the loose floor only catches
//!   the batch path collapsing to per-frame work.
//! * `dedup-parity-permille` — a **zero-width band at 1000**: a verdict
//!   served from the dedup cache must equal the solved one exactly.
//! * `*hit-rate*`, `*dedup-rate*` — higher is better with absolute slack
//!   25‰: cache-effectiveness ratios of seeded workloads are
//!   deterministic, like the detection rates.
//! * `*warm-request-speedup*` — higher is better with an absolute floor
//!   of 5000‰ (the bench caps the record at 10000): the "warm repeat is
//!   ≥5× cheaper" server contract is gated directly, independent of how
//!   far above 5× the committed baseline happens to sit.
//! * `*parallel-speedup*` — higher is better, 50% relative slack: the
//!   committed single-core baselines are 1000‰ floors; multi-core runners
//!   gate real scaling against them.
//! * `*speedup*` (anything else) — higher is better, 35% relative slack:
//!   these are timing *ratios*, so runner-speed effects largely cancel,
//!   but shared CI hardware still jitters them.
//! * `warm-hit`, `detection-*`, `families-safe` — higher is better with a
//!   small absolute slack (these are deterministic permille rates from
//!   seeded workloads; the slack absorbs platform float differences).
//! * `volume-ratio` — lower is better (the shard union should stay tight).
//! * anything else ending in `-permille` — higher is better, 10% relative
//!   slack: add an explicit rule when a new metric's direction differs.

use std::process::ExitCode;

/// One parsed benchmark record (the subset of the shim's JSON we need).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Record {
    id: String,
    value: u128,
}

/// Tolerance rule for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Regression = fresh below `baseline - slack`.
    HigherIsBetter { rel_permille: u128, abs: u128 },
    /// Regression = fresh above `baseline + slack`.
    LowerIsBetter { rel_permille: u128, abs: u128 },
    /// Regression = fresh outside `centre ± halfwidth` (baseline-independent).
    Band { centre: u128, halfwidth: u128 },
}

/// Per-metric rule table. Matches on the metric id (which includes the
/// bench prefix, e.g. `e9/k1-parity-permille`).
fn rule_for(id: &str) -> Gate {
    if id.ends_with("batch-parity-permille") {
        // Bit-exactness is a correctness contract, not a measurement: the
        // batched monitor sweep must agree with per-frame checking on every
        // verdict, so the record is exactly 1000 or the gate fails.
        Gate::Band {
            centre: 1000,
            halfwidth: 0,
        }
    } else if id.ends_with("k1-parity-permille") {
        // The documented ±5% parity band around exact parity (1000‰).
        Gate::Band {
            centre: 1000,
            halfwidth: 50,
        }
    } else if id.contains("frames-per-sec") {
        // Absolute throughput (frames·1000/s) is machine-speed dependent in
        // a way the timing *ratios* are not, so the floor is a loose 50% of
        // the committed baseline — it catches order-of-magnitude collapses
        // (e.g. the batch path silently falling back to per-frame work)
        // without flaking on slower CI runners.
        Gate::HigherIsBetter {
            rel_permille: 500,
            abs: 0,
        }
    } else if id.ends_with("dedup-parity-permille") {
        // Serving a deduplicated obligation from the verdict cache must be
        // verdict-identical to solving it — a correctness contract like
        // batch parity, so the band has zero width.
        Gate::Band {
            centre: 1000,
            halfwidth: 0,
        }
    } else if id.ends_with("fault-isolation-parity-permille") {
        // Obligations a fault plan does not touch must be bit-identical
        // to the fault-free run, and the faulted report itself must be
        // run-to-run deterministic — a correctness contract like batch
        // parity, so the band has zero width.
        Gate::Band {
            centre: 1000,
            halfwidth: 0,
        }
    } else if id.ends_with("traced-parity-permille") {
        // Tracing is strictly observational: a traced server's verdicts,
        // fold order and dedup flags must be bit-identical to an
        // untraced server's — a correctness contract like batch parity,
        // so the band has zero width.
        Gate::Band {
            centre: 1000,
            halfwidth: 0,
        }
    } else if id.contains("trace/overhead") {
        // Disabled-tracing overhead per request (permille of request
        // wall time). Lower is better; the absolute slack dominates at
        // the committed single-digit baseline and still keeps the gate
        // far below the 20‰ issue budget the bench itself asserts.
        Gate::LowerIsBetter {
            rel_permille: 1000,
            abs: 10,
        }
    } else if id.contains("deadline-overrun") {
        // How much of a full solve an already-expired request still
        // costs (expired-serve time / full-solve time, in permille).
        // Lower is better; the generous slack absorbs timer jitter on
        // shared runners while still catching the fast path regressing
        // into real solving.
        Gate::LowerIsBetter {
            rel_permille: 1000,
            abs: 50,
        }
    } else if id.ends_with("delta/parity-permille") {
        // Delta-verification verdicts must equal a from-scratch run's
        // bit-for-bit — reuse and absorption are proofs, not heuristics —
        // so like the other parity contracts the band has zero width.
        Gate::Band {
            centre: 1000,
            halfwidth: 0,
        }
    } else if id.contains("hit-rate") || id.contains("dedup-rate") || id.contains("reuse-rate") {
        // Cache, dedup and delta-reuse rates are deterministic permille
        // ratios of seeded workloads (like the detection rates), so they
        // get a small absolute slack rather than a relative one.
        Gate::HigherIsBetter {
            rel_permille: 0,
            abs: 25,
        }
    } else if id.contains("warm-request-speedup") {
        // The resident-server contract: a warm repeat request must stay at
        // least 5× cheaper than the cold first request. The bench caps the
        // record at 10000 (10×), so the absolute floor of 5000 *is* the
        // acceptance criterion rather than a drifting baseline fraction.
        Gate::HigherIsBetter {
            rel_permille: 0,
            abs: 5000,
        }
    } else if id.contains("parallel-speedup") {
        // Multi-core scaling records: committed as 1000-permille floors
        // from a single-core runner (where parallel == serial), gated only
        // on hosts with more cores; 50% relative slack absorbs scheduler
        // noise on shared CI runners.
        Gate::HigherIsBetter {
            rel_permille: 500,
            abs: 0,
        }
    } else if id.contains("speedup") {
        Gate::HigherIsBetter {
            rel_permille: 350,
            abs: 0,
        }
    } else if id.contains("warm-hit") {
        Gate::HigherIsBetter {
            rel_permille: 0,
            abs: 20,
        }
    } else if id.contains("detection") {
        Gate::HigherIsBetter {
            rel_permille: 0,
            abs: 30,
        }
    } else if id.contains("families-safe") {
        Gate::HigherIsBetter {
            rel_permille: 0,
            abs: 50,
        }
    } else if id.contains("volume-ratio") {
        Gate::LowerIsBetter {
            rel_permille: 100,
            abs: 10,
        }
    } else {
        Gate::HigherIsBetter {
            rel_permille: 100,
            abs: 25,
        }
    }
}

/// The verdict for one gated metric.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    id: String,
    baseline: u128,
    fresh: Option<u128>,
    passed: bool,
    allowed: String,
}

fn slack(baseline: u128, rel_permille: u128, abs: u128) -> u128 {
    (baseline * rel_permille / 1000).max(abs)
}

/// Evaluates one metric against its rule.
fn evaluate(id: &str, baseline: u128, fresh: u128) -> (bool, String) {
    match rule_for(id) {
        Gate::HigherIsBetter { rel_permille, abs } => {
            let floor = baseline.saturating_sub(slack(baseline, rel_permille, abs));
            (fresh >= floor, format!(">= {floor}"))
        }
        Gate::LowerIsBetter { rel_permille, abs } => {
            let ceiling = baseline + slack(baseline, rel_permille, abs);
            (fresh <= ceiling, format!("<= {ceiling}"))
        }
        Gate::Band { centre, halfwidth } => {
            let lo = centre.saturating_sub(halfwidth);
            let hi = centre + halfwidth;
            (
                (lo..=hi).contains(&fresh),
                format!("in [{lo}, {hi}] (band around {centre})"),
            )
        }
    }
}

/// Minimal parser for the criterion shim's JSON report: extracts every
/// `{"id": "...", "mean_ns": N, ...}` object from the `results` array. The
/// format is produced by our own shim, so a targeted scanner is enough —
/// but it tolerates arbitrary whitespace and field order.
fn parse_records(json: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    let mut rest = json;
    while let Some(open) = rest.find('{') {
        // Skip the top-level document object: only objects that contain an
        // "id" key before their closing brace are records.
        let Some(close_rel) = rest[open + 1..].find('}') else {
            break;
        };
        let body = &rest[open + 1..open + 1 + close_rel];
        if body.contains("\"id\"") {
            let id = extract_string(body, "id")
                .ok_or_else(|| format!("record without a readable id: {body}"))?;
            let value = extract_number(body, "mean_ns")
                .ok_or_else(|| format!("record {id} without a mean_ns value"))?;
            records.push(Record { id, value });
            rest = &rest[open + 1 + close_rel..];
        } else {
            // The document object itself: descend into it.
            rest = &rest[open + 1..];
        }
    }
    Ok(records)
}

fn extract_string(body: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\"");
    let after_key = &body[body.find(&marker)? + marker.len()..];
    let after_colon = &after_key[after_key.find(':')? + 1..];
    let start = after_colon.find('"')? + 1;
    let end = start + after_colon[start..].find('"')?;
    Some(after_colon[start..end].to_string())
}

fn extract_number(body: &str, key: &str) -> Option<u128> {
    let marker = format!("\"{key}\"");
    let after_key = &body[body.find(&marker)? + marker.len()..];
    let after_colon = after_key[after_key.find(':')? + 1..].trim_start();
    let digits: String = after_colon
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Gates every `-permille` metric of `baseline_json` against `fresh_json`.
fn gate(baseline_json: &str, fresh_json: &str) -> Result<Vec<Finding>, String> {
    let baseline = parse_records(baseline_json)?;
    let fresh = parse_records(fresh_json)?;
    let mut findings = Vec::new();
    for record in baseline.iter().filter(|r| r.id.ends_with("-permille")) {
        match fresh.iter().find(|f| f.id == record.id) {
            Some(found) => {
                let (passed, allowed) = evaluate(&record.id, record.value, found.value);
                findings.push(Finding {
                    id: record.id.clone(),
                    baseline: record.value,
                    fresh: Some(found.value),
                    passed,
                    allowed,
                });
            }
            None => findings.push(Finding {
                id: record.id.clone(),
                baseline: record.value,
                fresh: None,
                passed: false,
                allowed: "present in the fresh run".to_string(),
            }),
        }
    }
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: benchgate <baseline.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|error| format!("cannot read {path}: {error}"))
    };
    let result = read(baseline_path)
        .and_then(|baseline| read(fresh_path).map(|fresh| (baseline, fresh)))
        .and_then(|(baseline, fresh)| gate(&baseline, &fresh));
    let findings = match result {
        Ok(findings) => findings,
        Err(error) => {
            eprintln!("benchgate: {error}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("benchgate: no -permille metric records in {baseline_path}; nothing gated");
        return ExitCode::SUCCESS;
    }
    let mut failed = 0usize;
    println!("benchgate: {baseline_path} vs {fresh_path}");
    println!(
        "{:<44} {:>10} {:>10}  verdict",
        "metric", "baseline", "fresh"
    );
    for finding in &findings {
        let fresh = finding
            .fresh
            .map_or_else(|| "missing".to_string(), |v| v.to_string());
        let verdict = if finding.passed {
            "ok".to_string()
        } else {
            failed += 1;
            format!("REGRESSION (allowed: {})", finding.allowed)
        };
        println!(
            "{:<44} {:>10} {:>10}  {verdict}",
            finding.id, finding.baseline, fresh
        );
    }
    if failed > 0 {
        eprintln!("benchgate: {failed} metric(s) regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!(
            "benchgate: all {} gated metric(s) within tolerance",
            findings.len()
        );
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, u128)]) -> String {
        let mut out = String::from("{\n  \"host_cpus\": 1,\n  \"results\": [\n");
        for (i, (id, value)) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"id\": \"{id}\", \"mean_ns\": {value}, \"min_ns\": {value}, \"samples\": 1}}{comma}\n"
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    #[test]
    fn parser_reads_the_shim_format() {
        let json = report(&[
            ("e9/verify/monolithic", 222487335),
            ("e9/k1-parity-permille", 1007),
        ]);
        let records = parse_records(&json).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "e9/verify/monolithic");
        assert_eq!(records[1].value, 1007);
    }

    #[test]
    fn timings_are_not_gated() {
        let baseline = report(&[("e9/verify/monolithic", 1_000_000)]);
        // A 100× timing "regression" passes: timings are informational.
        let fresh = report(&[("e9/verify/monolithic", 100_000_000)]);
        assert!(gate(&baseline, &fresh).unwrap().is_empty());
    }

    #[test]
    fn injected_ten_percent_regression_fails() {
        // The acceptance scenario: a deterministic detection metric drops
        // 10% (800‰ → 720‰). The slack is 30‰ absolute, so this fails.
        let baseline = report(&[("e10/detection-blackout-permille", 800)]);
        let fresh = report(&[("e10/detection-blackout-permille", 720)]);
        let findings = gate(&baseline, &fresh).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].passed);
        // Same for the warm-hit rate (993‰ → 893‰).
        let baseline = report(&[("e8/warm-hit-permille", 993)]);
        let fresh = report(&[("e8/warm-hit-permille", 893)]);
        assert!(!gate(&baseline, &fresh).unwrap()[0].passed);
    }

    #[test]
    fn small_drift_and_improvements_pass() {
        let baseline = report(&[
            ("e10/detection-downpour-permille", 950),
            ("e8/speedup-permille", 6800),
            ("e9/volume-ratio-permille", 56),
        ]);
        let fresh = report(&[
            ("e10/detection-downpour-permille", 940), // within abs slack 30
            ("e8/speedup-permille", 9000),            // improvement
            ("e9/volume-ratio-permille", 50),         // tighter union
        ]);
        assert!(gate(&baseline, &fresh).unwrap().iter().all(|f| f.passed));
    }

    #[test]
    fn parity_band_is_plus_minus_five_percent_around_exact_parity() {
        let baseline = report(&[("e9/k1-parity-permille", 1007)]);
        // 1007 (0.7% slower than monolithic) is inside the band …
        assert!(gate(&baseline, &report(&[("e9/k1-parity-permille", 1007)])).unwrap()[0].passed);
        // … as is anything in [950, 1050] …
        assert!(gate(&baseline, &report(&[("e9/k1-parity-permille", 951)])).unwrap()[0].passed);
        assert!(gate(&baseline, &report(&[("e9/k1-parity-permille", 1049)])).unwrap()[0].passed);
        // … but a 6% deviation in either direction fails.
        assert!(!gate(&baseline, &report(&[("e9/k1-parity-permille", 1060)])).unwrap()[0].passed);
        assert!(!gate(&baseline, &report(&[("e9/k1-parity-permille", 940)])).unwrap()[0].passed);
    }

    #[test]
    fn speedup_ratios_get_relative_slack() {
        let baseline = report(&[("e9/shard-speedup-permille", 11622)]);
        // 35% relative slack: floor is 11622 - 4067 = 7555.
        assert!(
            gate(&baseline, &report(&[("e9/shard-speedup-permille", 7600)])).unwrap()[0].passed
        );
        assert!(
            !gate(&baseline, &report(&[("e9/shard-speedup-permille", 7000)])).unwrap()[0].passed
        );
    }

    #[test]
    fn volume_ratio_gates_increases_only() {
        let baseline = report(&[("e9/volume-ratio-permille", 56)]);
        assert!(gate(&baseline, &report(&[("e9/volume-ratio-permille", 60)])).unwrap()[0].passed);
        assert!(!gate(&baseline, &report(&[("e9/volume-ratio-permille", 80)])).unwrap()[0].passed);
    }

    #[test]
    fn missing_metric_fails_the_gate() {
        let baseline = report(&[("e9/detection-delta-permille", 100)]);
        let fresh = report(&[("e9/verify/monolithic", 12345)]);
        let findings = gate(&baseline, &fresh).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].passed);
        assert_eq!(findings[0].fresh, None);
    }

    #[test]
    fn batch_parity_demands_exact_equality() {
        let baseline = report(&[("e11/batch-parity-permille", 1000)]);
        assert!(
            gate(&baseline, &report(&[("e11/batch-parity-permille", 1000)])).unwrap()[0].passed
        );
        // Any deviation — even 1‰ — is a correctness failure, not noise.
        assert!(
            !gate(&baseline, &report(&[("e11/batch-parity-permille", 999)])).unwrap()[0].passed
        );
        assert!(
            !gate(&baseline, &report(&[("e11/batch-parity-permille", 1001)])).unwrap()[0].passed
        );
        assert!(!gate(&baseline, &report(&[("e11/batch-parity-permille", 0)])).unwrap()[0].passed);
    }

    #[test]
    fn frames_per_sec_floor_is_half_the_baseline() {
        let baseline = report(&[("e11/monitor-batch-frames-per-sec-permille", 92_000_000)]);
        // A slower runner at 60% of the committed throughput passes …
        let fresh = report(&[("e11/monitor-batch-frames-per-sec-permille", 55_200_000)]);
        assert!(gate(&baseline, &fresh).unwrap()[0].passed);
        // … but dropping below half (the batch path collapsing) fails.
        let fresh = report(&[("e11/monitor-batch-frames-per-sec-permille", 40_000_000)]);
        assert!(!gate(&baseline, &fresh).unwrap()[0].passed);
    }

    #[test]
    fn committed_e11_baseline_passes_against_itself() {
        let baseline = report(&[
            ("e11/batch-parity-permille", 1000),
            ("e11/monitor-batch-speedup-permille", 3160),
            ("e11/sharded-batch-speedup-permille", 3169),
            ("e11/monitor-batch-frames-per-sec-permille", 129_712_061),
            ("e11/sharded-batch-frames-per-sec-permille", 123_076_320),
            ("e11/propagation-batch-speedup-permille", 1887),
        ]);
        let findings = gate(&baseline, &baseline).unwrap();
        assert_eq!(findings.len(), 6);
        assert!(findings.iter().all(|f| f.passed));
    }

    #[test]
    fn dedup_parity_demands_exact_equality() {
        let baseline = report(&[("serve/dedup-parity-permille", 1000)]);
        assert!(
            gate(&baseline, &report(&[("serve/dedup-parity-permille", 1000)])).unwrap()[0].passed
        );
        assert!(
            !gate(&baseline, &report(&[("serve/dedup-parity-permille", 999)])).unwrap()[0].passed
        );
        assert!(
            !gate(&baseline, &report(&[("serve/dedup-parity-permille", 0)])).unwrap()[0].passed
        );
    }

    #[test]
    fn fault_isolation_parity_demands_exact_equality() {
        let baseline = report(&[("serve/fault-isolation-parity-permille", 1000)]);
        let gate_at = |fresh| {
            gate(
                &baseline,
                &report(&[("serve/fault-isolation-parity-permille", fresh)]),
            )
            .unwrap()[0]
                .passed
        };
        assert!(gate_at(1000));
        // Any deviation — a healthy obligation diverging under faults —
        // is a correctness failure, not noise.
        assert!(!gate_at(999));
        assert!(!gate_at(1001));
        assert!(!gate_at(0));
    }

    #[test]
    fn traced_parity_demands_exact_equality() {
        let baseline = report(&[("trace/traced-parity-permille", 1000)]);
        let gate_at = |fresh| {
            gate(
                &baseline,
                &report(&[("trace/traced-parity-permille", fresh)]),
            )
            .unwrap()[0]
                .passed
        };
        assert!(gate_at(1000));
        // Tracing changing any verdict — in either direction — is a
        // correctness failure, not noise.
        assert!(!gate_at(999));
        assert!(!gate_at(1001));
        assert!(!gate_at(0));
    }

    #[test]
    fn trace_overhead_gates_increases_only() {
        let baseline = report(&[("trace/overhead-permille", 3)]);
        let gate_at = |fresh| {
            gate(&baseline, &report(&[("trace/overhead-permille", fresh)])).unwrap()[0].passed
        };
        // Improvements and jitter inside baseline + max(100%, 10) pass …
        assert!(gate_at(0));
        assert!(gate_at(3));
        assert!(gate_at(13));
        // … but disabled tracing growing a real cost fails.
        assert!(!gate_at(14));
        assert!(!gate_at(100));
    }

    #[test]
    fn deadline_overrun_gates_increases_only() {
        let baseline = report(&[("serve/deadline-overrun-permille", 10)]);
        let gate_at = |fresh| {
            gate(
                &baseline,
                &report(&[("serve/deadline-overrun-permille", fresh)]),
            )
            .unwrap()[0]
                .passed
        };
        // Improvements and jitter inside baseline + max(100%, 50) pass …
        assert!(gate_at(0));
        assert!(gate_at(10));
        assert!(gate_at(60));
        // … but the expired fast path degenerating into a meaningful
        // fraction of a real solve fails.
        assert!(!gate_at(61));
        assert!(!gate_at(1000));
    }

    #[test]
    fn cache_rates_get_the_deterministic_absolute_slack() {
        for id in [
            "serve/template-hit-rate-permille",
            "serve/dedup-rate-permille",
        ] {
            let baseline = report(&[(id, 400)]);
            // Within the 25‰ absolute slack …
            assert!(
                gate(&baseline, &report(&[(id, 380)])).unwrap()[0].passed,
                "{id}"
            );
            // … improvements always pass …
            assert!(
                gate(&baseline, &report(&[(id, 600)])).unwrap()[0].passed,
                "{id}"
            );
            // … but a real drop fails (a 10% relative rule would let
            // 360 through; the deterministic class must not).
            assert!(
                !gate(&baseline, &report(&[(id, 360)])).unwrap()[0].passed,
                "{id}"
            );
        }
    }

    #[test]
    fn delta_parity_demands_exact_equality() {
        let baseline = report(&[("delta/parity-permille", 1000)]);
        let gate_at = |fresh| {
            gate(&baseline, &report(&[("delta/parity-permille", fresh)])).unwrap()[0].passed
        };
        assert!(gate_at(1000));
        // A delta verdict diverging from the from-scratch verdict — in
        // either direction — is a soundness failure, not noise.
        assert!(!gate_at(999));
        assert!(!gate_at(1001));
        assert!(!gate_at(0));
    }

    #[test]
    fn reuse_rate_gets_the_deterministic_absolute_slack() {
        let baseline = report(&[("delta/reuse-rate-permille", 750)]);
        let gate_at = |fresh| {
            gate(&baseline, &report(&[("delta/reuse-rate-permille", fresh)])).unwrap()[0].passed
        };
        // Within the 25‰ absolute slack, and improvements always pass …
        assert!(gate_at(750));
        assert!(gate_at(725));
        assert!(gate_at(1000));
        // … but a real reuse drop fails (a 10% relative rule would let
        // 680 through; the deterministic class must not).
        assert!(!gate_at(724));
        assert!(!gate_at(500));
    }

    #[test]
    fn committed_e15_baseline_passes_against_itself() {
        let baseline = report(&[
            ("delta/reuse-rate-permille", 750),
            ("delta/parity-permille", 1000),
            ("delta/speedup-permille", 3045),
        ]);
        let findings = gate(&baseline, &baseline).unwrap();
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.passed));
    }

    #[test]
    fn warm_request_speedup_floor_is_the_five_x_contract() {
        // Committed baseline at the 10000 cap: the floor must stay 5000,
        // not a fraction of the cap.
        let baseline = report(&[("serve/warm-request-speedup-permille", 10000)]);
        let gate_at = |fresh| {
            gate(
                &baseline,
                &report(&[("serve/warm-request-speedup-permille", fresh)]),
            )
            .unwrap()[0]
                .passed
        };
        assert!(gate_at(10000));
        assert!(gate_at(5000), "exactly 5× is still within contract");
        assert!(
            !gate_at(4999),
            "below 5× breaks the resident-server contract"
        );
    }

    #[test]
    fn parallel_speedup_floors_gate_multicore_scaling() {
        // Single-core floor: parallel == serial == 1000‰.
        let baseline = report(&[("e7/parallel-speedup-4-permille", 1000)]);
        assert!(
            gate(
                &baseline,
                &report(&[("e7/parallel-speedup-4-permille", 2600)])
            )
            .unwrap()[0]
                .passed
        );
        assert!(
            gate(
                &baseline,
                &report(&[("e7/parallel-speedup-4-permille", 500)])
            )
            .unwrap()[0]
                .passed,
            "50% relative slack on the floor itself"
        );
        assert!(
            !gate(
                &baseline,
                &report(&[("e7/parallel-speedup-4-permille", 499)])
            )
            .unwrap()[0]
                .passed
        );
        // A multi-core committed baseline gates real scaling.
        let baseline = report(&[("e7/parallel-speedup-4-permille", 2600)]);
        assert!(
            gate(
                &baseline,
                &report(&[("e7/parallel-speedup-4-permille", 1400)])
            )
            .unwrap()[0]
                .passed
        );
        assert!(
            !gate(
                &baseline,
                &report(&[("e7/parallel-speedup-4-permille", 1200)])
            )
            .unwrap()[0]
                .passed
        );
    }

    #[test]
    fn committed_e9_baseline_passes_against_itself() {
        let baseline = report(&[
            ("e9/volume-ratio-permille", 56),
            ("e9/k1-parity-permille", 1007),
            ("e9/shard-speedup-permille", 11622),
            ("e9/detection-delta-permille", 100),
        ]);
        let findings = gate(&baseline, &baseline).unwrap();
        assert_eq!(findings.len(), 4);
        assert!(findings.iter().all(|f| f.passed));
    }
}
